#include "tensor/im2col.hpp"

#include "common/error.hpp"

namespace hadfl::ops {

void ConvGeometry::validate() const {
  HADFL_CHECK_ARG(channels > 0 && height > 0 && width > 0,
                  "conv geometry requires positive input dims");
  HADFL_CHECK_ARG(kernel_h > 0 && kernel_w > 0, "conv kernel must be positive");
  HADFL_CHECK_ARG(stride > 0, "conv stride must be positive");
  HADFL_CHECK_ARG(height + 2 * pad >= kernel_h && width + 2 * pad >= kernel_w,
                  "kernel " << kernel_h << "x" << kernel_w
                            << " larger than padded input " << (height + 2 * pad)
                            << "x" << (width + 2 * pad));
}

void im2col(const float* image, const ConvGeometry& g, float* columns,
            std::size_t row_stride) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    const float* chan = image + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = columns + row * row_stride;
        for (std::size_t y = 0; y < oh; ++y) {
          // Signed arithmetic: padding can push source coordinates negative.
          const std::ptrdiff_t sy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            const bool inside = sy >= 0 && sx >= 0 &&
                                sy < static_cast<std::ptrdiff_t>(g.height) &&
                                sx < static_cast<std::ptrdiff_t>(g.width);
            out[y * ow + x] =
                inside ? chan[static_cast<std::size_t>(sy) * g.width +
                              static_cast<std::size_t>(sx)]
                       : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* columns, const ConvGeometry& g, float* image,
            std::size_t row_stride) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    float* chan = image + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in = columns + row * row_stride;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t sy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(g.height)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(g.width)) continue;
            chan[static_cast<std::size_t>(sy) * g.width +
                 static_cast<std::size_t>(sx)] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace hadfl::ops
