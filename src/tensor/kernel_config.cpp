#include "tensor/kernel_config.hpp"

#include <mutex>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace hadfl::ops {

namespace {
std::mutex g_config_mu;
KernelConfig g_config;
}  // namespace

std::size_t KernelConfig::threads() const {
  return max_threads > 0 ? max_threads : default_compute_threads();
}

KernelConfig kernel_config() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  return g_config;
}

void set_kernel_config(const KernelConfig& config) {
  HADFL_CHECK_ARG(config.mc > 0 && config.kc > 0 && config.nc > 0,
                  "kernel block sizes must be positive (mc="
                      << config.mc << ", kc=" << config.kc
                      << ", nc=" << config.nc << ")");
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_config = config;
}

}  // namespace hadfl::ops
