#include "tensor/ops.hpp"

#include "common/error.hpp"

namespace hadfl::ops {

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, float alpha, float beta) {
  for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  // i-k-j order: the inner loop streams through contiguous rows of B and C,
  // which vectorizes well without an explicit blocking scheme.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = alpha * a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha, float beta) {
  for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha, float beta) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = alpha * acc + beta * crow[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  HADFL_CHECK_SHAPE(a.ndim() == 2 && b.ndim() == 2,
                    "matmul requires 2-d tensors, got "
                        << shape_to_string(a.shape()) << " x "
                        << shape_to_string(b.shape()));
  HADFL_CHECK_SHAPE(a.dim(1) == b.dim(0),
                    "matmul inner dims mismatch: " << shape_to_string(a.shape())
                                                   << " x "
                                                   << shape_to_string(b.shape()));
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  HADFL_CHECK_SHAPE(x.size() == y.size(),
                    "axpy size mismatch: " << x.size() << " vs " << y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(float alpha, std::span<float> x) {
  for (auto& v : x) v *= alpha;
}

double sum(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc;
}

double squared_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return acc;
}

namespace {
template <typename F>
Tensor elementwise(const Tensor& a, const Tensor& b, F f, const char* name) {
  HADFL_CHECK_SHAPE(a.shape() == b.shape(),
                    name << " shape mismatch: " << shape_to_string(a.shape())
                         << " vs " << shape_to_string(b.shape()));
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = f(a[i], b[i]);
  return out;
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, [](float x, float y) { return x + y; }, "add");
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, [](float x, float y) { return x - y; }, "sub");
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, [](float x, float y) { return x * y; }, "mul");
}

}  // namespace hadfl::ops
