#include "tensor/ops.hpp"

#include <algorithm>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace hadfl::ops {

namespace {

// ---- Tiled GEMM engine --------------------------------------------------
// One driver serves all three layout variants through element accessors;
// packing normalizes every layout into the same micro-panel format, so the
// inner kernel is identical (and identically rounded) for all of them.
//
// Determinism contract: the (mc x nc) tile grid and the kc-block sweep are
// functions of (m, k, n) and the KernelConfig block sizes only. Each tile
// owns a disjoint region of C and folds its kc blocks in fixed ascending
// order, so the result is bit-identical whether tiles run sequentially or
// on any number of pool threads.

/// Element accessor for a row-major matrix with leading dimension `ld`.
struct RowMajor {
  const float* p;
  std::size_t ld;
  float operator()(std::size_t r, std::size_t c) const { return p[r * ld + c]; }
};

/// Element accessor for the transpose of a row-major matrix: logical (r, c)
/// reads storage [c * ld + r].
struct Trans {
  const float* p;
  std::size_t ld;
  float operator()(std::size_t r, std::size_t c) const { return p[c * ld + r]; }
};

using PackBuffer = std::vector<float, AlignedAllocator<float>>;

/// Per-thread pack scratch. Reused across calls and tiles; contents are
/// fully rewritten for every (tile, kc-block), so which thread runs which
/// tile never leaks into the numerics.
struct TileScratch {
  PackBuffer a;
  PackBuffer b;
};
thread_local TileScratch tl_scratch;

/// Packs A rows [i0, i0+mrows) x depth [p0, p0+depth) into kMicroRows-row
/// panels, zero-padding the fringe panel so the micro-kernel always reads
/// full registers. Panel layout: panel[p * kMicroRows + r].
template <typename AccA>
void pack_a(const AccA& A, std::size_t i0, std::size_t mrows, std::size_t p0,
            std::size_t depth, float* HADFL_RESTRICT buf) {
  const std::size_t panels = (mrows + kMicroRows - 1) / kMicroRows;
  for (std::size_t ir = 0; ir < panels; ++ir) {
    float* HADFL_RESTRICT panel = buf + ir * depth * kMicroRows;
    const std::size_t base = i0 + ir * kMicroRows;
    const std::size_t rows = std::min(kMicroRows, i0 + mrows - base);
    for (std::size_t p = 0; p < depth; ++p) {
      for (std::size_t r = 0; r < rows; ++r) {
        panel[p * kMicroRows + r] = A(base + r, p0 + p);
      }
      for (std::size_t r = rows; r < kMicroRows; ++r) {
        panel[p * kMicroRows + r] = 0.0f;
      }
    }
  }
}

/// Packs B depth [p0, p0+depth) x cols [j0, j0+ncols) into kMicroCols-wide
/// panels, zero-padded like pack_a. Panel layout: panel[p * kMicroCols + c].
template <typename AccB>
void pack_b(const AccB& B, std::size_t p0, std::size_t depth, std::size_t j0,
            std::size_t ncols, float* HADFL_RESTRICT buf) {
  const std::size_t panels = (ncols + kMicroCols - 1) / kMicroCols;
  for (std::size_t jr = 0; jr < panels; ++jr) {
    float* HADFL_RESTRICT panel = buf + jr * depth * kMicroCols;
    const std::size_t base = j0 + jr * kMicroCols;
    const std::size_t cols = std::min(kMicroCols, j0 + ncols - base);
    for (std::size_t p = 0; p < depth; ++p) {
      for (std::size_t c = 0; c < cols; ++c) {
        panel[p * kMicroCols + c] = B(p0 + p, base + c);
      }
      for (std::size_t c = cols; c < kMicroCols; ++c) {
        panel[p * kMicroCols + c] = 0.0f;
      }
    }
  }
}

/// acc(kMicroRows x kMicroCols) = A-panel x B-panel over `depth`. The
/// accumulator block is compile-time sized so it lives in vector registers;
/// the inner loop is a broadcast-multiply-accumulate over one packed row.
void micro_kernel(std::size_t depth, const float* HADFL_RESTRICT ap,
                  const float* HADFL_RESTRICT bp, float* HADFL_RESTRICT acc) {
  for (std::size_t i = 0; i < kMicroRows * kMicroCols; ++i) acc[i] = 0.0f;
  for (std::size_t p = 0; p < depth; ++p) {
    const float* HADFL_RESTRICT brow = bp + p * kMicroCols;
    const float* HADFL_RESTRICT arow = ap + p * kMicroRows;
    for (std::size_t r = 0; r < kMicroRows; ++r) {
      const float av = arow[r];
      HADFL_PRAGMA_SIMD
      for (std::size_t c = 0; c < kMicroCols; ++c) {
        acc[r * kMicroCols + c] += av * brow[c];
      }
    }
  }
}

/// Computes one (i0..i1) x (j0..j1) tile of C. No zero-skip shortcuts:
/// every packed value flows through the multiply, so 0 * NaN = NaN and
/// infinities propagate exactly as in the unblocked loops.
template <typename AccA, typename AccB>
void compute_tile(const AccA& A, const AccB& B, float* c, std::size_t ldc,
                  std::size_t k, float alpha, float beta, std::size_t i0,
                  std::size_t i1, std::size_t j0, std::size_t j1,
                  std::size_t kc) {
  const std::size_t mrows = i1 - i0;
  const std::size_t ncols = j1 - j0;
  for (std::size_t i = i0; i < i1; ++i) {
    float* HADFL_RESTRICT crow = c + i * ldc + j0;
    if (beta == 0.0f) {
      for (std::size_t j = 0; j < ncols; ++j) crow[j] = 0.0f;
    } else {
      HADFL_PRAGMA_SIMD
      for (std::size_t j = 0; j < ncols; ++j) crow[j] *= beta;
    }
  }
  if (k == 0) return;

  const std::size_t apanels = (mrows + kMicroRows - 1) / kMicroRows;
  const std::size_t bpanels = (ncols + kMicroCols - 1) / kMicroCols;
  const std::size_t depth_cap = std::min(kc, k);
  TileScratch& scratch = tl_scratch;
  scratch.a.resize(apanels * kMicroRows * depth_cap);
  scratch.b.resize(bpanels * kMicroCols * depth_cap);
  alignas(kSlabAlignment) float acc[kMicroRows * kMicroCols];

  for (std::size_t p0 = 0; p0 < k; p0 += kc) {
    const std::size_t depth = std::min(kc, k - p0);
    pack_b(B, p0, depth, j0, ncols, scratch.b.data());
    pack_a(A, i0, mrows, p0, depth, scratch.a.data());
    for (std::size_t jr = 0; jr < bpanels; ++jr) {
      const std::size_t jbase = jr * kMicroCols;
      const std::size_t cols = std::min(kMicroCols, ncols - jbase);
      for (std::size_t ir = 0; ir < apanels; ++ir) {
        micro_kernel(depth, scratch.a.data() + ir * depth * kMicroRows,
                     scratch.b.data() + jr * depth * kMicroCols, acc);
        const std::size_t ibase = ir * kMicroRows;
        const std::size_t rows = std::min(kMicroRows, mrows - ibase);
        for (std::size_t r = 0; r < rows; ++r) {
          float* HADFL_RESTRICT crow = c + (i0 + ibase + r) * ldc + j0 + jbase;
          const float* HADFL_RESTRICT arow = acc + r * kMicroCols;
          for (std::size_t cc = 0; cc < cols; ++cc) {
            crow[cc] += alpha * arow[cc];
          }
        }
      }
    }
  }
}

template <typename AccA, typename AccB>
void gemm_tiled(const AccA& A, const AccB& B, float* c, std::size_t m,
                std::size_t k, std::size_t n, float alpha, float beta) {
  if (m == 0 || n == 0) return;
  const KernelConfig cfg = kernel_config();
  const std::size_t iblocks = (m + cfg.mc - 1) / cfg.mc;
  const std::size_t jblocks = (n + cfg.nc - 1) / cfg.nc;
  const std::size_t tiles = iblocks * jblocks;
  auto run_tile = [&](std::size_t t) {
    const std::size_t bi = t / jblocks;
    const std::size_t bj = t % jblocks;
    const std::size_t i0 = bi * cfg.mc;
    const std::size_t j0 = bj * cfg.nc;
    compute_tile(A, B, c, n, k, alpha, beta, i0, std::min(m, i0 + cfg.mc), j0,
                 std::min(n, j0 + cfg.nc), cfg.kc);
  };
  const std::size_t threads = cfg.threads();
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  if (tiles == 1 || threads == 1 ||
      flops < static_cast<double>(cfg.parallel_min_flops)) {
    for (std::size_t t = 0; t < tiles; ++t) run_tile(t);
  } else {
    parallel_for_each(tiles, run_tile, threads);
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, float alpha, float beta) {
  gemm_tiled(RowMajor{a, k}, RowMajor{b, n}, c, m, k, n, alpha, beta);
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha, float beta) {
  gemm_tiled(Trans{a, m}, RowMajor{b, n}, c, m, k, n, alpha, beta);
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha, float beta) {
  gemm_tiled(RowMajor{a, k}, Trans{b, k}, c, m, k, n, alpha, beta);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  HADFL_CHECK_SHAPE(a.ndim() == 2 && b.ndim() == 2,
                    "matmul requires 2-d tensors, got "
                        << shape_to_string(a.shape()) << " x "
                        << shape_to_string(b.shape()));
  HADFL_CHECK_SHAPE(a.dim(1) == b.dim(0),
                    "matmul inner dims mismatch: " << shape_to_string(a.shape())
                                                   << " x "
                                                   << shape_to_string(b.shape()));
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  HADFL_CHECK_SHAPE(x.size() == y.size(),
                    "axpy size mismatch: " << x.size() << " vs " << y.size());
  const float* HADFL_RESTRICT xp = x.data();
  float* HADFL_RESTRICT yp = y.data();
  const std::size_t n = x.size();
  HADFL_PRAGMA_SIMD
  for (std::size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void scale(float alpha, std::span<float> x) {
  float* HADFL_RESTRICT xp = x.data();
  const std::size_t n = x.size();
  HADFL_PRAGMA_SIMD
  for (std::size_t i = 0; i < n; ++i) xp[i] *= alpha;
}

double sum(std::span<const float> x) {
  const float* HADFL_RESTRICT xp = x.data();
  const std::size_t n = x.size();
  double acc = 0.0;
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) acc += xp[i];
  return acc;
}

double squared_norm(std::span<const float> x) {
  const float* HADFL_RESTRICT xp = x.data();
  const std::size_t n = x.size();
  double acc = 0.0;
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(xp[i]) * xp[i];
  }
  return acc;
}

namespace {
template <typename F>
Tensor elementwise(const Tensor& a, const Tensor& b, F f, const char* name) {
  HADFL_CHECK_SHAPE(a.shape() == b.shape(),
                    name << " shape mismatch: " << shape_to_string(a.shape())
                         << " vs " << shape_to_string(b.shape()));
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = f(a[i], b[i]);
  return out;
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, [](float x, float y) { return x + y; }, "add");
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, [](float x, float y) { return x - y; }, "sub");
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, [](float x, float y) { return x * y; }, "mul");
}

// ---- Reference kernels --------------------------------------------------

namespace reference {
namespace {
inline float finish(double acc, float alpha, float beta, float c_old) {
  const double base = beta == 0.0f ? 0.0 : static_cast<double>(beta) * c_old;
  return static_cast<float>(static_cast<double>(alpha) * acc + base);
}
}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, float alpha, float beta) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = finish(acc, alpha, beta, c[i * n + j]);
    }
  }
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha, float beta) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[p * m + i]) * b[p * n + j];
      }
      c[i * n + j] = finish(acc, alpha, beta, c[i * n + j]);
    }
  }
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha, float beta) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[j * k + p];
      }
      c[i * n + j] = finish(acc, alpha, beta, c[i * n + j]);
    }
  }
}

}  // namespace reference

}  // namespace hadfl::ops
