// Dense float tensor with contiguous, row-major storage.
//
// This is the numeric workhorse under the NN library. It is deliberately
// simple: no broadcasting, no autograd — layers implement their own
// backward passes (src/nn). Value semantics throughout (copy copies the
// buffer; move steals it), per C.20/C.61 of the Core Guidelines.
//
// A tensor either OWNS its buffer (the default) or is a VIEW into storage
// owned by someone else — a nn::ParameterArena slot, so that a whole
// model's state is one contiguous span. `rebind` migrates an owning tensor
// into external storage; copying a view produces an owning deep copy (value
// semantics are preserved either way), and moving a view moves the
// reference. The viewed storage must outlive the view.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hadfl {

/// Shape of a tensor: a list of non-negative dimensions.
using Shape = std::vector<std::size_t>;

std::string shape_to_string(const Shape& shape);
std::size_t shape_numel(const Shape& shape);

/// Contiguous row-major float tensor (owning buffer or arena view).
class Tensor {
 public:
  /// Empty 0-d tensor (numel() == 0 with empty shape is distinguished from
  /// scalar; default tensors are mostly placeholders).
  Tensor() = default;

  /// Allocates a zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value);

  /// Adopts the given data; data.size() must equal the shape's numel.
  Tensor(Shape shape, std::vector<float> data);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }

  const Shape& shape() const { return shape_; }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t numel() const { return numel_; }
  std::size_t dim(std::size_t axis) const;

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }

  /// The owning buffer. Only valid on owning tensors — throws on views
  /// (their storage belongs to an arena, not to this tensor).
  std::vector<float>& storage();
  const std::vector<float>& storage() const;

  /// True when the buffer belongs to external storage (a parameter arena).
  bool is_view() const { return view_; }

  /// Migrates this tensor's contents into `storage` (which must hold at
  /// least `count` == numel() floats and outlive the tensor) and turns the
  /// tensor into a view of it. The owned buffer is released. Idempotent
  /// when already bound to the same storage.
  void rebind(float* storage, std::size_t count);

  float& operator[](std::size_t i) { return ptr_[i]; }
  float operator[](std::size_t i) const { return ptr_[i]; }

  /// Bounds-checked element access (linear index).
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// 2-d indexed access; requires ndim() == 2.
  float& at2(std::size_t r, std::size_t c);
  float at2(std::size_t r, std::size_t c) const;

  /// 4-d indexed access (N, C, H, W); requires ndim() == 4.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Reinterpret with a new shape of identical numel (contiguous reshape).
  /// Always returns an owning tensor.
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);

  /// True if shapes are equal and all elements are within `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

 private:
  Shape shape_;
  std::vector<float> data_;       ///< owning storage; empty for views
  float* ptr_ = nullptr;          ///< active buffer (owned or external)
  std::size_t numel_ = 0;
  bool view_ = false;
};

}  // namespace hadfl
