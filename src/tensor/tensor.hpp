// Dense float tensor with owning, contiguous, row-major storage.
//
// This is the numeric workhorse under the NN library. It is deliberately
// simple: no views, no broadcasting, no autograd — layers implement their
// own backward passes (src/nn). Value semantics throughout (copy copies the
// buffer; move steals it), per C.20/C.61 of the Core Guidelines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hadfl {

/// Shape of a tensor: a list of non-negative dimensions.
using Shape = std::vector<std::size_t>;

std::string shape_to_string(const Shape& shape);
std::size_t shape_numel(const Shape& shape);

/// Owning row-major float tensor.
class Tensor {
 public:
  /// Empty 0-d tensor (numel() == 0 with empty shape is distinguished from
  /// scalar; default tensors are mostly placeholders).
  Tensor() = default;

  /// Allocates a zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value);

  /// Adopts the given data; data.size() must equal the shape's numel.
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }

  const Shape& shape() const { return shape_; }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked element access (linear index).
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// 2-d indexed access; requires ndim() == 2.
  float& at2(std::size_t r, std::size_t c);
  float at2(std::size_t r, std::size_t c) const;

  /// 4-d indexed access (N, C, H, W); requires ndim() == 4.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Reinterpret with a new shape of identical numel (contiguous reshape).
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);

  /// True if shapes are equal and all elements are within `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace hadfl
