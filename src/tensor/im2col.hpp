// im2col / col2im lowering for convolution.
//
// Conv2d forward becomes one GEMM over the unfolded input patches; the
// backward data pass uses col2im to fold patch gradients back into the input
// gradient. Layout conventions: images are (C, H, W) per sample; the column
// matrix is (C*KH*KW, OH*OW).
#pragma once

#include <cstddef>

namespace hadfl::ops {

struct ConvGeometry {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t kernel_h = 0;
  std::size_t kernel_w = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (height + 2 * pad - kernel_h) / stride + 1; }
  std::size_t out_w() const { return (width + 2 * pad - kernel_w) / stride + 1; }
  std::size_t col_rows() const { return channels * kernel_h * kernel_w; }
  std::size_t col_cols() const { return out_h() * out_w(); }

  /// Validates that the kernel fits the (padded) image.
  void validate() const;
};

/// Unfold one (C, H, W) image into the (C*KH*KW, OH*OW) column matrix.
void im2col(const float* image, const ConvGeometry& g, float* columns);

/// Fold a (C*KH*KW, OH*OW) column matrix back into a (C, H, W) image,
/// accumulating overlapping contributions. `image` must be zeroed by the
/// caller if accumulation from scratch is wanted.
void col2im(const float* columns, const ConvGeometry& g, float* image);

}  // namespace hadfl::ops
