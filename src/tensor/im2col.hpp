// im2col / col2im lowering for convolution.
//
// Conv2d forward becomes one GEMM over the unfolded input patches; the
// backward data pass uses col2im to fold patch gradients back into the
// input gradient. Layout conventions: images are (C, H, W) per sample; the
// column matrix is (C*KH*KW, OH*OW).
//
// The strided variants place one sample's columns inside a larger batched
// matrix: with `row_stride` = N * OH*OW and `columns` offset to sample s's
// first column, all N samples unfold into ONE (C*KH*KW, N*OH*OW) matrix,
// so the whole batch's convolution is a single GEMM (nn::Conv2d). Samples
// occupy disjoint column ranges, so unfolding is safely parallel over s.
#pragma once

#include <cstddef>

namespace hadfl::ops {

struct ConvGeometry {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t kernel_h = 0;
  std::size_t kernel_w = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (height + 2 * pad - kernel_h) / stride + 1; }
  std::size_t out_w() const { return (width + 2 * pad - kernel_w) / stride + 1; }
  std::size_t col_rows() const { return channels * kernel_h * kernel_w; }
  std::size_t col_cols() const { return out_h() * out_w(); }

  /// Validates that the kernel fits the (padded) image.
  void validate() const;
};

/// Unfold one (C, H, W) image into a column matrix whose rows are
/// `row_stride` floats apart; the sample's OH*OW columns start at
/// `columns`. `row_stride` must be >= col_cols().
void im2col(const float* image, const ConvGeometry& g, float* columns,
            std::size_t row_stride);

/// Compact layout: row_stride == col_cols().
inline void im2col(const float* image, const ConvGeometry& g, float* columns) {
  im2col(image, g, columns, g.col_cols());
}

/// Fold a column matrix (rows `row_stride` apart, sample columns starting
/// at `columns`) back into a (C, H, W) image, accumulating overlapping
/// contributions. `image` must be zeroed by the caller if accumulation
/// from scratch is wanted.
void col2im(const float* columns, const ConvGeometry& g, float* image,
            std::size_t row_stride);

/// Compact layout: row_stride == col_cols().
inline void col2im(const float* columns, const ConvGeometry& g, float* image) {
  col2im(columns, g, image, g.col_cols());
}

}  // namespace hadfl::ops
