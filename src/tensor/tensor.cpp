#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace hadfl {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(shape_numel(shape_), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  HADFL_CHECK_SHAPE(data_.size() == shape_numel(shape_),
                    "data size " << data_.size() << " != numel of shape "
                                 << shape_to_string(shape_));
}

std::size_t Tensor::dim(std::size_t axis) const {
  HADFL_CHECK_ARG(axis < shape_.size(),
                  "axis " << axis << " out of range for " << ndim() << "-d tensor");
  return shape_[axis];
}

float& Tensor::at(std::size_t i) {
  HADFL_CHECK_ARG(i < data_.size(), "index " << i << " out of range " << data_.size());
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  HADFL_CHECK_ARG(i < data_.size(), "index " << i << " out of range " << data_.size());
  return data_[i];
}

float& Tensor::at2(std::size_t r, std::size_t c) {
  HADFL_CHECK_SHAPE(ndim() == 2, "at2 on " << ndim() << "-d tensor");
  HADFL_CHECK_ARG(r < shape_[0] && c < shape_[1],
                  "(" << r << "," << c << ") out of range "
                      << shape_to_string(shape_));
  return data_[r * shape_[1] + c];
}

float Tensor::at2(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  HADFL_CHECK_SHAPE(ndim() == 4, "at4 on " << ndim() << "-d tensor");
  HADFL_CHECK_ARG(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
                  "(" << n << "," << c << "," << h << "," << w
                      << ") out of range " << shape_to_string(shape_));
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  HADFL_CHECK_SHAPE(shape_numel(new_shape) == numel(),
                    "cannot reshape " << shape_to_string(shape_) << " ("
                                      << numel() << " elems) to "
                                      << shape_to_string(new_shape));
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace hadfl
