#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace hadfl {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {
  ptr_ = data_.data();
  numel_ = data_.size();
}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(shape_numel(shape_), value) {
  ptr_ = data_.data();
  numel_ = data_.size();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  HADFL_CHECK_SHAPE(data_.size() == shape_numel(shape_),
                    "data size " << data_.size() << " != numel of shape "
                                 << shape_to_string(shape_));
  ptr_ = data_.data();
  numel_ = data_.size();
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_),
      data_(other.ptr_, other.ptr_ + other.numel_),
      numel_(other.numel_) {
  // Copying a view decays to an owning deep copy: value semantics hold and
  // the copy never outlives someone else's arena.
  ptr_ = data_.data();
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  data_.assign(other.ptr_, other.ptr_ + other.numel_);
  ptr_ = data_.data();
  numel_ = other.numel_;
  view_ = false;
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      data_(std::move(other.data_)),
      ptr_(other.ptr_),
      numel_(other.numel_),
      view_(other.view_) {
  if (!view_) ptr_ = data_.data();
  other.shape_.clear();
  other.data_.clear();
  other.ptr_ = other.data_.data();
  other.numel_ = 0;
  other.view_ = false;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  numel_ = other.numel_;
  view_ = other.view_;
  ptr_ = view_ ? other.ptr_ : data_.data();
  other.shape_.clear();
  other.data_.clear();
  other.ptr_ = other.data_.data();
  other.numel_ = 0;
  other.view_ = false;
  return *this;
}

std::vector<float>& Tensor::storage() {
  HADFL_CHECK_MSG(!view_, "storage() on an arena-view tensor");
  return data_;
}

const std::vector<float>& Tensor::storage() const {
  HADFL_CHECK_MSG(!view_, "storage() on an arena-view tensor");
  return data_;
}

void Tensor::rebind(float* storage, std::size_t count) {
  HADFL_CHECK_ARG(storage != nullptr || numel_ == 0,
                  "rebind to null storage");
  HADFL_CHECK_SHAPE(count == numel_, "rebind size " << count << " != numel "
                                                    << numel_);
  if (view_ && ptr_ == storage) return;
  std::copy_n(ptr_, numel_, storage);
  data_.clear();
  data_.shrink_to_fit();
  ptr_ = storage;
  view_ = true;
}

std::size_t Tensor::dim(std::size_t axis) const {
  HADFL_CHECK_ARG(axis < shape_.size(),
                  "axis " << axis << " out of range for " << ndim() << "-d tensor");
  return shape_[axis];
}

float& Tensor::at(std::size_t i) {
  HADFL_CHECK_ARG(i < numel_, "index " << i << " out of range " << numel_);
  return ptr_[i];
}

float Tensor::at(std::size_t i) const {
  HADFL_CHECK_ARG(i < numel_, "index " << i << " out of range " << numel_);
  return ptr_[i];
}

float& Tensor::at2(std::size_t r, std::size_t c) {
  HADFL_CHECK_SHAPE(ndim() == 2, "at2 on " << ndim() << "-d tensor");
  HADFL_CHECK_ARG(r < shape_[0] && c < shape_[1],
                  "(" << r << "," << c << ") out of range "
                      << shape_to_string(shape_));
  return ptr_[r * shape_[1] + c];
}

float Tensor::at2(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  HADFL_CHECK_SHAPE(ndim() == 4, "at4 on " << ndim() << "-d tensor");
  HADFL_CHECK_ARG(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
                  "(" << n << "," << c << "," << h << "," << w
                      << ") out of range " << shape_to_string(shape_));
  return ptr_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  HADFL_CHECK_SHAPE(shape_numel(new_shape) == numel(),
                    "cannot reshape " << shape_to_string(shape_) << " ("
                                      << numel() << " elems) to "
                                      << shape_to_string(new_shape));
  return Tensor(std::move(new_shape), std::vector<float>(ptr_, ptr_ + numel_));
}

void Tensor::fill(float value) {
  std::fill_n(ptr_, numel_, value);
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < numel_; ++i) {
    if (std::fabs(ptr_[i] - other.ptr_[i]) > tol) return false;
  }
  return true;
}

}  // namespace hadfl
