// Tuning knobs for the tiled compute kernels (tensor/ops.cpp).
//
// The GEMM family blocks its operands for cache (mc x kc panels of A,
// kc x nc panels of B) and parallelizes over independent (mc x nc) output
// tiles on the shared common/ThreadPool. The tile grid is a function of
// the problem SHAPE and these block sizes only — never of the thread
// count — so a kernel's result is bit-identical whether it runs on 1
// thread or 64. Threads only decide who computes which tile.
//
// Thread budget resolution, in priority order:
//   1. KernelConfig::max_threads when non-zero (set_kernel_config),
//   2. the HADFL_NUM_THREADS environment variable,
//   3. hardware concurrency.
#pragma once

#include <cstddef>

namespace hadfl::ops {

/// Register micro-tile: each inner-kernel invocation produces a
/// (kMicroRows x kMicroCols) block of C from packed panels. Compile-time
/// so the accumulator block lives in vector registers.
inline constexpr std::size_t kMicroRows = 6;
inline constexpr std::size_t kMicroCols = 16;

struct KernelConfig {
  /// Cache blocking: rows of A per packed block (L2-resident)...
  std::size_t mc = 64;
  /// ...depth of the packed A/B panels...
  std::size_t kc = 256;
  /// ...and columns of B per packed panel (also the tile width of the
  /// parallel partition of C).
  std::size_t nc = 256;

  /// Compute-thread cap for the kernels; 0 defers to HADFL_NUM_THREADS /
  /// hardware concurrency (common/parallel.hpp).
  std::size_t max_threads = 0;

  /// Problems below this many flops (2*m*k*n) always run on the calling
  /// thread: fork-join overhead beats any speedup on tiny GEMMs. Has no
  /// effect on results.
  std::size_t parallel_min_flops = std::size_t{1} << 18;

  /// The resolved thread budget (priority order documented above; >= 1).
  std::size_t threads() const;
};

/// Process-global kernel configuration, copied by each kernel invocation.
KernelConfig kernel_config();

/// Replaces the global configuration (validates block sizes >= 1).
/// Thread-safe with respect to concurrent kernel calls; callers changing
/// the config mid-training are responsible for their own determinism
/// story (block sizes change results' rounding, max_threads never does).
void set_kernel_config(const KernelConfig& config);

}  // namespace hadfl::ops
