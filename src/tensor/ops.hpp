// Numeric kernels over Tensor / raw float spans.
//
// The GEMM family is cache-blocked and register-tiled: operands are packed
// into (mc x kc) / (kc x nc) panels, a vectorizable micro-kernel produces
// (kMicroRows x kMicroCols) output blocks, and independent output tiles run
// in parallel on the shared common/ThreadPool. The tile grid depends only
// on the problem shape and the KernelConfig block sizes — never on the
// thread count — so results are bit-identical at any HADFL_NUM_THREADS
// (see tensor/kernel_config.hpp).
//
// No zero-skip fast paths: 0 * NaN must stay NaN, and the kernels
// propagate non-finite inputs exactly like the straightforward loops.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/kernel_config.hpp"
#include "tensor/tensor.hpp"

namespace hadfl::ops {

/// C = alpha * A(m,k) * B(k,n) + beta * C(m,n).
/// beta == 0 overwrites C without reading it (BLAS convention).
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, float alpha = 1.0f, float beta = 0.0f);

/// C = alpha * A^T(k,m) * B(k,n) + beta * C  (A stored as (k, m)).
void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha = 1.0f,
             float beta = 0.0f);

/// C = alpha * A(m,k) * B^T(n,k) + beta * C  (B stored as (n, k)).
void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha = 1.0f,
             float beta = 0.0f);

/// Tensor-level matmul; shapes (m,k) x (k,n) -> (m,n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale(float alpha, std::span<float> x);

/// Sum of all elements (double accumulator).
double sum(std::span<const float> x);

/// Squared L2 norm (double accumulator).
double squared_norm(std::span<const float> x);

/// Elementwise binary ops; shapes must match.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

// ---- Reference kernels --------------------------------------------------
// Unblocked triple loops with double accumulators, kept as the oracle the
// tiled kernels are property-tested and benchmarked against. Single
// threaded, no tuning knobs, never used on a hot path.
namespace reference {

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, float alpha = 1.0f, float beta = 0.0f);
void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha = 1.0f,
             float beta = 0.0f);
void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha = 1.0f,
             float beta = 0.0f);

}  // namespace reference

}  // namespace hadfl::ops
