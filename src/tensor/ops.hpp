// Numeric kernels over Tensor / raw float spans.
//
// GEMM is a straightforward blocked i-k-j loop; adequate for the scaled
// models used in the experiments while keeping the code dependency-free.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.hpp"

namespace hadfl::ops {

/// C = alpha * A(m,k) * B(k,n) + beta * C(m,n).
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, float alpha = 1.0f, float beta = 0.0f);

/// C = alpha * A^T(k,m) * B(k,n) + beta * C  (A stored as (k, m)).
void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha = 1.0f,
             float beta = 0.0f);

/// C = alpha * A(m,k) * B^T(n,k) + beta * C  (B stored as (n, k)).
void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, float alpha = 1.0f,
             float beta = 0.0f);

/// Tensor-level matmul; shapes (m,k) x (k,n) -> (m,n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale(float alpha, std::span<float> x);

/// Sum of all elements.
double sum(std::span<const float> x);

/// Squared L2 norm.
double squared_norm(std::span<const float> x);

/// Elementwise binary ops; shapes must match.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

}  // namespace hadfl::ops
