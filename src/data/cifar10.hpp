// CIFAR-10 binary-format loader.
//
// The paper evaluates on CIFAR-10. The offline development environment has
// no copy of the dataset (experiments use data/synthetic.hpp instead — see
// DESIGN.md), but this loader reads the standard binary distribution
// ("cifar-10-batches-bin": data_batch_1.bin … data_batch_5.bin +
// test_batch.bin) so the full paper workload runs unmodified wherever the
// dataset is available:
//
//   auto data = data::load_cifar10("/path/to/cifar-10-batches-bin");
//
// Format per record: 1 label byte + 3072 pixel bytes (3 channels x 32 x 32,
// channel-major) — 30730000 bytes per 10000-record batch file. Pixels are
// normalized to [-1, 1].
#pragma once

#include <string>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"  // for TrainTestSplit

namespace hadfl::data {

constexpr std::size_t kCifarImageSize = 32;
constexpr std::size_t kCifarChannels = 3;
constexpr std::size_t kCifarClasses = 10;
constexpr std::size_t kCifarRecordBytes =
    1 + kCifarChannels * kCifarImageSize * kCifarImageSize;

/// Loads one CIFAR-10 binary batch file (any record count).
Dataset load_cifar10_batch(const std::string& path);

/// Loads the standard directory layout: 5 training batches + 1 test batch.
/// Throws hadfl::Error if any file is missing or malformed.
TrainTestSplit load_cifar10(const std::string& directory);

/// Writes records in CIFAR-10 binary format (used by tests and by tools
/// that re-export subsets). Labels must be < kCifarClasses and images
/// shaped (N, 3, 32, 32) with values in [-1, 1].
void save_cifar10_batch(const std::string& path, const Dataset& dataset);

}  // namespace hadfl::data
