#include "data/batch_iterator.hpp"

#include "common/error.hpp"

namespace hadfl::data {

BatchIterator::BatchIterator(const Dataset& dataset,
                             std::vector<std::size_t> indices,
                             std::size_t batch_size, Rng rng)
    : dataset_(&dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      rng_(rng) {
  HADFL_CHECK_ARG(!indices_.empty(), "BatchIterator needs a non-empty partition");
  HADFL_CHECK_ARG(batch_size_ > 0, "batch size must be positive");
  rng_.shuffle(indices_);
}

void BatchIterator::set_augmentor(Augmentor augmentor) {
  augmentor_ = std::move(augmentor);
}

Batch BatchIterator::next() {
  if (cursor_ >= indices_.size()) {
    cursor_ = 0;
    rng_.shuffle(indices_);
  }
  const std::size_t take = std::min(batch_size_, indices_.size() - cursor_);
  std::vector<std::size_t> batch_indices(
      indices_.begin() + static_cast<std::ptrdiff_t>(cursor_),
      indices_.begin() + static_cast<std::ptrdiff_t>(cursor_ + take));
  cursor_ += take;
  Batch batch = dataset_->gather(batch_indices);
  if (augmentor_) augmentor_->apply(batch, rng_);
  return batch;
}

std::size_t BatchIterator::batches_per_epoch() const {
  return (indices_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace hadfl::data
