#include "data/synthetic.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hadfl::data {

namespace {

/// Smooth per-class template: a sum of a few random low-frequency sinusoids
/// per channel, normalized to roughly unit amplitude.
std::vector<float> make_template(std::size_t channels, std::size_t s,
                                 Rng& rng) {
  std::vector<float> tpl(channels * s * s, 0.0f);
  constexpr int kWaves = 3;
  for (std::size_t c = 0; c < channels; ++c) {
    for (int wv = 0; wv < kWaves; ++wv) {
      const double fx = rng.uniform(0.5, 2.0);
      const double fy = rng.uniform(0.5, 2.0);
      const double phase_x = rng.uniform(0.0, 6.28318);
      const double phase_y = rng.uniform(0.0, 6.28318);
      const double amp = rng.uniform(0.4, 1.0) / kWaves;
      for (std::size_t y = 0; y < s; ++y) {
        for (std::size_t x = 0; x < s; ++x) {
          const double vy = std::sin(2.0 * 3.14159265 * fy * y / s + phase_y);
          const double vx = std::sin(2.0 * 3.14159265 * fx * x / s + phase_x);
          tpl[(c * s + y) * s + x] += static_cast<float>(amp * vx * vy);
        }
      }
    }
  }
  return tpl;
}

Dataset generate(const SyntheticConfig& cfg,
                 const std::vector<std::vector<float>>& templates,
                 std::size_t count, Rng& rng) {
  const std::size_t s = cfg.image_size;
  const std::size_t sample_size = cfg.channels * s * s;
  Tensor images({count, cfg.channels, s, s});
  std::vector<int> labels(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto cls = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cfg.num_classes) - 1));
    labels[i] = static_cast<int>(cls);
    const auto& tpl = templates[cls];
    const auto shift_y = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(cfg.max_shift)));
    const auto shift_x = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(cfg.max_shift)));
    float* out = images.data() + i * sample_size;
    for (std::size_t c = 0; c < cfg.channels; ++c) {
      for (std::size_t y = 0; y < s; ++y) {
        const std::size_t sy = (y + shift_y) % s;
        for (std::size_t x = 0; x < s; ++x) {
          const std::size_t sx = (x + shift_x) % s;
          out[(c * s + y) * s + x] =
              tpl[(c * s + sy) * s + sx] +
              static_cast<float>(rng.normal(0.0, cfg.noise_std));
        }
      }
    }
  }
  return Dataset(std::move(images), std::move(labels), cfg.num_classes);
}

}  // namespace

TrainTestSplit make_synthetic_cifar(const SyntheticConfig& cfg) {
  HADFL_CHECK_ARG(cfg.num_classes > 1, "need at least two classes");
  HADFL_CHECK_ARG(cfg.channels > 0 && cfg.image_size > 0,
                  "image dimensions must be positive");
  HADFL_CHECK_ARG(cfg.train_samples > 0 && cfg.test_samples > 0,
                  "sample counts must be positive");
  HADFL_CHECK_ARG(cfg.noise_std >= 0.0, "noise_std must be non-negative");
  HADFL_CHECK_ARG(cfg.max_shift < cfg.image_size,
                  "max_shift must be smaller than the image");

  Rng rng(cfg.seed);
  std::vector<std::vector<float>> templates;
  templates.reserve(cfg.num_classes);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    templates.push_back(make_template(cfg.channels, cfg.image_size, rng));
  }
  Rng train_rng = rng.split();
  Rng test_rng = rng.split();
  return TrainTestSplit{
      generate(cfg, templates, cfg.train_samples, train_rng),
      generate(cfg, templates, cfg.test_samples, test_rng),
  };
}

}  // namespace hadfl::data
