// Cyclic shuffled mini-batch iterator over a device's data partition.
//
// Matches Alg. 1 line 15 ("sample a mini-batch from P^k"): batches are drawn
// by iterating a shuffled permutation of the device's indices; the
// permutation is reshuffled each time it is exhausted (i.e., per local
// epoch). The last batch of a pass may be short if the partition size is
// not a multiple of the batch size.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "data/augment.hpp"
#include "data/dataset.hpp"

namespace hadfl::data {

class BatchIterator {
 public:
  /// `indices` are the device's sample indices into `dataset` (P^k).
  BatchIterator(const Dataset& dataset, std::vector<std::size_t> indices,
                std::size_t batch_size, Rng rng);

  /// Attaches training-time augmentation applied to every batch.
  void set_augmentor(Augmentor augmentor);

  /// Next mini-batch; reshuffles transparently at epoch boundaries.
  Batch next();

  /// Number of batches per pass over the partition.
  std::size_t batches_per_epoch() const;

  std::size_t partition_size() const { return indices_.size(); }
  std::size_t batch_size() const { return batch_size_; }

 private:
  const Dataset* dataset_;
  std::vector<std::size_t> indices_;
  std::size_t batch_size_;
  std::size_t cursor_ = 0;
  Rng rng_;
  std::optional<Augmentor> augmentor_;
};

}  // namespace hadfl::data
