// Data partitioning across federated devices.
//
// The paper splits the training data across the four GPUs (IID). The
// non-IID partitioners support the future-work scenario ("taking into
// account ... data distribution") and the noniid example.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace hadfl::data {

using Partition = std::vector<std::vector<std::size_t>>;  ///< per-device indices

/// Shuffles and deals samples round-robin: equal shares (+/- 1 sample).
Partition partition_iid(const Dataset& dataset, std::size_t num_devices,
                        Rng& rng);

/// Dirichlet(alpha) label-skew partition: for each class, the class's
/// samples are split across devices with proportions drawn from a
/// Dirichlet distribution. Smaller alpha = more skew. Guarantees every
/// device receives at least one sample.
Partition partition_dirichlet(const Dataset& dataset, std::size_t num_devices,
                              double alpha, Rng& rng);

/// Pathological shard partition (the FedAvg paper's non-IID scheme): sorts
/// by label, cuts into `num_devices * shards_per_device` shards, deals
/// shards randomly so each device sees only a few classes.
Partition partition_shards(const Dataset& dataset, std::size_t num_devices,
                           std::size_t shards_per_device, Rng& rng);

/// Deterministic fleet-scale partition: device d gets `per_device` indices
/// (d * per_device + i) mod dataset_size, i = 0..per_device-1. No RNG and
/// no shuffle, so building it is O(num_devices * per_device) with no
/// dataset-sized scratch — the shape a 10^5-device fleet needs. Indices may
/// repeat across devices once num_devices * per_device exceeds the dataset
/// (fleets oversubscribe a fixed dataset by design), so the result is NOT
/// is_valid_partition-exact in general.
Partition cyclic_partition(std::size_t dataset_size, std::size_t num_devices,
                           std::size_t per_device);

/// Sanity-check a partition: covers every index exactly once.
bool is_valid_partition(const Partition& partition, std::size_t dataset_size);

}  // namespace hadfl::data
