// Data partitioning across federated devices.
//
// The paper splits the training data across the four GPUs (IID). The
// non-IID partitioners support the future-work scenario ("taking into
// account ... data distribution") and the noniid example.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace hadfl::data {

using Partition = std::vector<std::vector<std::size_t>>;  ///< per-device indices

/// Shuffles and deals samples round-robin: equal shares (+/- 1 sample).
Partition partition_iid(const Dataset& dataset, std::size_t num_devices,
                        Rng& rng);

/// Dirichlet(alpha) label-skew partition: for each class, the class's
/// samples are split across devices with proportions drawn from a
/// Dirichlet distribution. Smaller alpha = more skew. Guarantees every
/// device receives at least one sample.
Partition partition_dirichlet(const Dataset& dataset, std::size_t num_devices,
                              double alpha, Rng& rng);

/// Pathological shard partition (the FedAvg paper's non-IID scheme): sorts
/// by label, cuts into `num_devices * shards_per_device` shards, deals
/// shards randomly so each device sees only a few classes.
Partition partition_shards(const Dataset& dataset, std::size_t num_devices,
                           std::size_t shards_per_device, Rng& rng);

/// Sanity-check a partition: covers every index exactly once.
bool is_valid_partition(const Partition& partition, std::size_t dataset_size);

}  // namespace hadfl::data
