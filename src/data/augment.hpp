// Training-time image augmentation — the standard CIFAR recipe the
// evaluation models are normally trained with: random crop after
// zero-padding, and random horizontal flip. Applied per batch by
// BatchIterator when an Augmentor is attached.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace hadfl::data {

struct AugmentConfig {
  std::size_t crop_padding = 1;   ///< pad each side, then random-crop back
  bool horizontal_flip = true;
  double flip_probability = 0.5;

  bool enabled() const { return crop_padding > 0 || horizontal_flip; }
};

/// Stateless transforms over batches; randomness comes from the caller's
/// generator so device streams stay independent and reproducible.
class Augmentor {
 public:
  explicit Augmentor(AugmentConfig config);

  const AugmentConfig& config() const { return config_; }

  /// Applies the configured transforms to every sample in place.
  void apply(Batch& batch, Rng& rng) const;

 private:
  AugmentConfig config_;
};

/// Zero-pads `image` (C, H, W) by `pad` on each side and crops an HxW
/// window at offset (dy, dx) in [0, 2*pad]. Exposed for tests.
void shift_crop(float* image, std::size_t channels, std::size_t height,
                std::size_t width, std::size_t pad, std::size_t dy,
                std::size_t dx);

/// Mirrors `image` (C, H, W) horizontally in place. Exposed for tests.
void flip_horizontal(float* image, std::size_t channels, std::size_t height,
                     std::size_t width);

}  // namespace hadfl::data
