#include "data/augment.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace hadfl::data {

Augmentor::Augmentor(AugmentConfig config) : config_(config) {
  HADFL_CHECK_ARG(config.flip_probability >= 0.0 &&
                      config.flip_probability <= 1.0,
                  "flip probability must be in [0, 1]");
}

void shift_crop(float* image, std::size_t channels, std::size_t height,
                std::size_t width, std::size_t pad, std::size_t dy,
                std::size_t dx) {
  HADFL_CHECK_ARG(dy <= 2 * pad && dx <= 2 * pad,
                  "crop offset exceeds padding");
  if (pad == 0) return;
  // Equivalent to reading from the padded image at offset (dy, dx): source
  // pixel (y, x) comes from original (y + dy - pad, x + dx - pad), zero
  // outside.
  std::vector<float> src(height * width);
  const auto off_y = static_cast<std::ptrdiff_t>(dy) -
                     static_cast<std::ptrdiff_t>(pad);
  const auto off_x = static_cast<std::ptrdiff_t>(dx) -
                     static_cast<std::ptrdiff_t>(pad);
  for (std::size_t c = 0; c < channels; ++c) {
    float* chan = image + c * height * width;
    std::copy_n(chan, height * width, src.data());
    for (std::size_t y = 0; y < height; ++y) {
      const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) + off_y;
      for (std::size_t x = 0; x < width; ++x) {
        const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(x) + off_x;
        const bool inside = sy >= 0 && sx >= 0 &&
                            sy < static_cast<std::ptrdiff_t>(height) &&
                            sx < static_cast<std::ptrdiff_t>(width);
        chan[y * width + x] =
            inside ? src[static_cast<std::size_t>(sy) * width +
                         static_cast<std::size_t>(sx)]
                   : 0.0f;
      }
    }
  }
}

void flip_horizontal(float* image, std::size_t channels, std::size_t height,
                     std::size_t width) {
  for (std::size_t c = 0; c < channels; ++c) {
    float* chan = image + c * height * width;
    for (std::size_t y = 0; y < height; ++y) {
      float* row = chan + y * width;
      std::reverse(row, row + width);
    }
  }
}

void Augmentor::apply(Batch& batch, Rng& rng) const {
  if (!config_.enabled() || batch.size() == 0) return;
  const std::size_t c = batch.x.dim(1);
  const std::size_t h = batch.x.dim(2);
  const std::size_t w = batch.x.dim(3);
  const std::size_t sample = c * h * w;
  for (std::size_t s = 0; s < batch.size(); ++s) {
    float* image = batch.x.data() + s * sample;
    if (config_.crop_padding > 0) {
      const auto dy = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(2 * config_.crop_padding)));
      const auto dx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(2 * config_.crop_padding)));
      shift_crop(image, c, h, w, config_.crop_padding, dy, dx);
    }
    if (config_.horizontal_flip &&
        rng.uniform() < config_.flip_probability) {
      flip_horizontal(image, c, h, w);
    }
  }
}

}  // namespace hadfl::data
