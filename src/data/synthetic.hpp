// Synthetic CIFAR-10 stand-in.
//
// The offline environment has no CIFAR-10, so experiments use a generated
// 10-class image dataset (see DESIGN.md, substitutions): each class has a
// smooth random template image; samples are the class template, randomly
// cyclically shifted (so the task is not linearly trivial and rewards
// convolutional structure), plus Gaussian pixel noise. `noise_std` controls
// difficulty.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace hadfl::data {

struct SyntheticConfig {
  std::size_t num_classes = 10;
  std::size_t channels = 3;
  std::size_t image_size = 16;
  std::size_t train_samples = 2048;
  std::size_t test_samples = 512;
  double noise_std = 0.35;
  std::size_t max_shift = 3;     ///< maximum cyclic shift in pixels
  std::uint64_t seed = 42;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Generates a train/test pair from the same class templates.
TrainTestSplit make_synthetic_cifar(const SyntheticConfig& config);

}  // namespace hadfl::data
