#include "data/cifar10.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "common/error.hpp"

namespace hadfl::data {

namespace {

float pixel_to_float(std::uint8_t byte) {
  // [0, 255] -> [-1, 1].
  return static_cast<float>(byte) / 127.5f - 1.0f;
}

std::uint8_t float_to_pixel(float value) {
  const float clamped = std::clamp(value, -1.0f, 1.0f);
  return static_cast<std::uint8_t>(std::clamp(
      static_cast<int>((clamped + 1.0f) * 127.5f + 0.5f), 0, 255));
}

}  // namespace

Dataset load_cifar10_batch(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  HADFL_CHECK_MSG(in.good(), "cannot open CIFAR-10 batch " << path);
  const auto file_size = static_cast<std::size_t>(in.tellg());
  HADFL_CHECK_MSG(file_size > 0 && file_size % kCifarRecordBytes == 0,
                  path << " is not a CIFAR-10 batch (size " << file_size
                       << " not a multiple of " << kCifarRecordBytes << ")");
  const std::size_t records = file_size / kCifarRecordBytes;
  in.seekg(0);

  const std::size_t pixels =
      kCifarChannels * kCifarImageSize * kCifarImageSize;
  Tensor images({records, kCifarChannels, kCifarImageSize, kCifarImageSize});
  std::vector<int> labels(records);
  std::vector<std::uint8_t> record(kCifarRecordBytes);
  for (std::size_t r = 0; r < records; ++r) {
    in.read(reinterpret_cast<char*>(record.data()),
            static_cast<std::streamsize>(record.size()));
    HADFL_CHECK_MSG(in.good(), "truncated CIFAR-10 batch " << path);
    HADFL_CHECK_MSG(record[0] < kCifarClasses,
                    "bad label " << int{record[0]} << " in " << path);
    labels[r] = record[0];
    float* out = images.data() + r * pixels;
    for (std::size_t i = 0; i < pixels; ++i) {
      out[i] = pixel_to_float(record[1 + i]);
    }
  }
  return Dataset(std::move(images), std::move(labels), kCifarClasses);
}

TrainTestSplit load_cifar10(const std::string& directory) {
  // Concatenate the five training batches.
  std::vector<Dataset> parts;
  std::size_t total = 0;
  for (int b = 1; b <= 5; ++b) {
    parts.push_back(load_cifar10_batch(directory + "/data_batch_" +
                                       std::to_string(b) + ".bin"));
    total += parts.back().size();
  }
  const std::size_t pixels =
      kCifarChannels * kCifarImageSize * kCifarImageSize;
  Tensor images({total, kCifarChannels, kCifarImageSize, kCifarImageSize});
  std::vector<int> labels;
  labels.reserve(total);
  std::size_t offset = 0;
  for (const Dataset& part : parts) {
    std::copy_n(part.images().data(), part.size() * pixels,
                images.data() + offset * pixels);
    labels.insert(labels.end(), part.labels().begin(), part.labels().end());
    offset += part.size();
  }
  return TrainTestSplit{
      Dataset(std::move(images), std::move(labels), kCifarClasses),
      load_cifar10_batch(directory + "/test_batch.bin"),
  };
}

void save_cifar10_batch(const std::string& path, const Dataset& dataset) {
  HADFL_CHECK_ARG(dataset.channels() == kCifarChannels &&
                      dataset.height() == kCifarImageSize &&
                      dataset.width() == kCifarImageSize,
                  "dataset is not CIFAR-shaped (3x32x32)");
  HADFL_CHECK_ARG(dataset.num_classes() <= kCifarClasses,
                  "dataset has more than 10 classes");
  std::ofstream out(path, std::ios::binary);
  HADFL_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  const std::size_t pixels =
      kCifarChannels * kCifarImageSize * kCifarImageSize;
  std::vector<std::uint8_t> record(kCifarRecordBytes);
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    record[0] = static_cast<std::uint8_t>(dataset.label(r));
    const float* in = dataset.images().data() + r * pixels;
    for (std::size_t i = 0; i < pixels; ++i) {
      record[1 + i] = float_to_pixel(in[i]);
    }
    out.write(reinterpret_cast<const char*>(record.data()),
              static_cast<std::streamsize>(record.size()));
  }
  HADFL_CHECK_MSG(out.good(), "write to " << path << " failed");
}

}  // namespace hadfl::data
