#include "data/dataset.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hadfl::data {

Batch concat_batches(const std::vector<Batch>& batches) {
  HADFL_CHECK_ARG(!batches.empty(), "concat of zero batches");
  const Shape& first = batches.front().x.shape();
  HADFL_CHECK_SHAPE(first.size() == 4, "batches must be (B, C, H, W)");
  std::size_t total = 0;
  for (const auto& b : batches) {
    HADFL_CHECK_SHAPE(b.x.ndim() == 4 && b.x.dim(1) == first[1] &&
                          b.x.dim(2) == first[2] && b.x.dim(3) == first[3],
                      "batch sample shapes differ");
    total += b.size();
  }
  Batch out{Tensor({total, first[1], first[2], first[3]}), {}};
  out.y.reserve(total);
  std::size_t offset = 0;
  for (const auto& b : batches) {
    std::copy_n(b.x.data(), b.x.numel(), out.x.data() + offset);
    offset += b.x.numel();
    out.y.insert(out.y.end(), b.y.begin(), b.y.end());
  }
  return out;
}

Dataset::Dataset(Tensor images, std::vector<int> labels,
                 std::size_t num_classes)
    : images_(std::move(images)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  HADFL_CHECK_SHAPE(images_.ndim() == 4,
                    "dataset images must be (N, C, H, W), got "
                        << shape_to_string(images_.shape()));
  HADFL_CHECK_ARG(images_.dim(0) == labels_.size(),
                  "image count " << images_.dim(0) << " != label count "
                                 << labels_.size());
  HADFL_CHECK_ARG(num_classes_ > 0, "dataset needs at least one class");
  for (int y : labels_) {
    HADFL_CHECK_ARG(y >= 0 && static_cast<std::size_t>(y) < num_classes_,
                    "label " << y << " out of range");
  }
}

int Dataset::label(std::size_t i) const {
  HADFL_CHECK_ARG(i < labels_.size(), "sample index out of range");
  return labels_[i];
}

Batch Dataset::gather(const std::vector<std::size_t>& indices) const {
  HADFL_CHECK_ARG(!indices.empty(), "gather of empty index list");
  const std::size_t c = channels();
  const std::size_t h = height();
  const std::size_t w = width();
  const std::size_t sample_size = c * h * w;
  Batch batch{Tensor({indices.size(), c, h, w}), {}};
  batch.y.reserve(indices.size());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::size_t i = indices[b];
    HADFL_CHECK_ARG(i < size(), "sample index " << i << " out of range");
    std::copy_n(images_.data() + i * sample_size, sample_size,
                batch.x.data() + b * sample_size);
    batch.y.push_back(labels_[i]);
  }
  return batch;
}

std::vector<std::size_t> Dataset::label_histogram(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::size_t> hist(num_classes_, 0);
  for (std::size_t i : indices) {
    HADFL_CHECK_ARG(i < size(), "sample index " << i << " out of range");
    ++hist[static_cast<std::size_t>(labels_[i])];
  }
  return hist;
}

}  // namespace hadfl::data
