#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hadfl::data {

namespace {

void check_args(const Dataset& dataset, std::size_t num_devices) {
  HADFL_CHECK_ARG(num_devices > 0, "need at least one device");
  HADFL_CHECK_ARG(dataset.size() >= num_devices,
                  "dataset smaller than device count");
}

/// Gamma(alpha, 1) sampler (Marsaglia–Tsang for alpha >= 1, boost for < 1).
double sample_gamma(double alpha, Rng& rng) {
  if (alpha < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double u = std::max(rng.uniform(), 1e-12);
    return sample_gamma(alpha + 1.0, rng) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = std::max(rng.uniform(), 1e-12);
    if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v)) return d * v;
  }
}

}  // namespace

Partition partition_iid(const Dataset& dataset, std::size_t num_devices,
                        Rng& rng) {
  check_args(dataset, num_devices);
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  Partition parts(num_devices);
  for (std::size_t i = 0; i < order.size(); ++i) {
    parts[i % num_devices].push_back(order[i]);
  }
  return parts;
}

Partition partition_dirichlet(const Dataset& dataset, std::size_t num_devices,
                              double alpha, Rng& rng) {
  check_args(dataset, num_devices);
  HADFL_CHECK_ARG(alpha > 0.0, "Dirichlet alpha must be positive");

  Partition parts(num_devices);
  for (std::size_t cls = 0; cls < dataset.num_classes(); ++cls) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      if (dataset.label(i) == static_cast<int>(cls)) members.push_back(i);
    }
    if (members.empty()) continue;
    rng.shuffle(members);
    // Dirichlet draw = normalized independent Gamma(alpha) draws.
    std::vector<double> props(num_devices);
    double total = 0.0;
    for (auto& p : props) {
      p = sample_gamma(alpha, rng);
      total += p;
    }
    std::size_t cursor = 0;
    for (std::size_t d = 0; d < num_devices; ++d) {
      const std::size_t take =
          d + 1 == num_devices
              ? members.size() - cursor
              : std::min<std::size_t>(
                    members.size() - cursor,
                    static_cast<std::size_t>(
                        std::llround(props[d] / total *
                                     static_cast<double>(members.size()))));
      for (std::size_t i = 0; i < take; ++i) {
        parts[d].push_back(members[cursor + i]);
      }
      cursor += take;
    }
  }

  // Every device must hold at least one sample; steal from the largest.
  for (std::size_t d = 0; d < num_devices; ++d) {
    if (!parts[d].empty()) continue;
    auto largest = std::max_element(
        parts.begin(), parts.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    HADFL_CHECK_MSG(largest->size() > 1, "cannot rebalance empty partition");
    parts[d].push_back(largest->back());
    largest->pop_back();
  }
  return parts;
}

Partition partition_shards(const Dataset& dataset, std::size_t num_devices,
                           std::size_t shards_per_device, Rng& rng) {
  check_args(dataset, num_devices);
  HADFL_CHECK_ARG(shards_per_device > 0, "need at least one shard per device");
  const std::size_t num_shards = num_devices * shards_per_device;
  HADFL_CHECK_ARG(dataset.size() >= num_shards,
                  "dataset smaller than shard count");

  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dataset.label(a) < dataset.label(b);
  });

  std::vector<std::size_t> shard_ids(num_shards);
  std::iota(shard_ids.begin(), shard_ids.end(), std::size_t{0});
  rng.shuffle(shard_ids);

  const std::size_t shard_size = dataset.size() / num_shards;
  Partition parts(num_devices);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t device = s / shards_per_device;
    const std::size_t shard = shard_ids[s];
    const std::size_t begin = shard * shard_size;
    const std::size_t end =
        shard + 1 == num_shards ? dataset.size() : begin + shard_size;
    for (std::size_t i = begin; i < end; ++i) {
      parts[device].push_back(order[i]);
    }
  }
  return parts;
}

Partition cyclic_partition(std::size_t dataset_size, std::size_t num_devices,
                           std::size_t per_device) {
  HADFL_CHECK_ARG(dataset_size > 0, "cyclic_partition of empty dataset");
  HADFL_CHECK_ARG(num_devices > 0, "cyclic_partition over zero devices");
  HADFL_CHECK_ARG(per_device > 0, "cyclic_partition with zero samples/device");
  Partition parts(num_devices);
  for (std::size_t d = 0; d < num_devices; ++d) {
    std::vector<std::size_t>& part = parts[d];
    part.resize(per_device);
    for (std::size_t i = 0; i < per_device; ++i) {
      part[i] = (d * per_device + i) % dataset_size;
    }
  }
  return parts;
}

bool is_valid_partition(const Partition& partition, std::size_t dataset_size) {
  std::vector<std::size_t> seen(dataset_size, 0);
  for (const auto& part : partition) {
    for (std::size_t i : part) {
      if (i >= dataset_size) return false;
      ++seen[i];
    }
  }
  return std::all_of(seen.begin(), seen.end(),
                     [](std::size_t c) { return c == 1; });
}

}  // namespace hadfl::data
