// In-memory labelled image dataset.
//
// Images are stored contiguously as (N, C, H, W) float32 alongside integer
// labels. Devices hold index lists into a shared dataset rather than copies,
// matching the FL setting where each device owns a partition P^k.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace hadfl::data {

/// One mini-batch: inputs (B, C, H, W) and labels of length B.
struct Batch {
  Tensor x;
  std::vector<int> y;

  std::size_t size() const { return y.size(); }
};

/// Concatenates batches along the sample dimension (all batches must share
/// C, H, W). Used by the distributed baseline to form the global batch.
Batch concat_batches(const std::vector<Batch>& batches);

class Dataset {
 public:
  Dataset() = default;

  /// `images` must have shape (N, C, H, W); labels length N.
  Dataset(Tensor images, std::vector<int> labels, std::size_t num_classes);

  std::size_t size() const { return labels_.size(); }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t channels() const { return images_.dim(1); }
  std::size_t height() const { return images_.dim(2); }
  std::size_t width() const { return images_.dim(3); }

  const Tensor& images() const { return images_; }
  const std::vector<int>& labels() const { return labels_; }
  int label(std::size_t i) const;

  /// Gathers the given sample indices into a batch.
  Batch gather(const std::vector<std::size_t>& indices) const;

  /// Label histogram (size num_classes) over a subset of indices.
  std::vector<std::size_t> label_histogram(
      const std::vector<std::size_t>& indices) const;

 private:
  Tensor images_;
  std::vector<int> labels_;
  std::size_t num_classes_ = 0;
};

}  // namespace hadfl::data
