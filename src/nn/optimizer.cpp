#include "nn/optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace hadfl::nn {

Sgd::Sgd(std::vector<Parameter*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  HADFL_CHECK_ARG(config_.learning_rate > 0.0, "learning rate must be positive");
  HADFL_CHECK_ARG(config_.momentum >= 0.0 && config_.momentum < 1.0,
                  "momentum must be in [0, 1)");
  HADFL_CHECK_ARG(config_.weight_decay >= 0.0,
                  "weight decay must be non-negative");
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) {
    HADFL_CHECK_ARG(p != nullptr, "null parameter passed to Sgd");
    velocity_.emplace_back(p->trainable ? p->numel() : 0, 0.0f);
  }
}

void Sgd::step() {
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto mu = static_cast<float>(config_.momentum);
  const auto wd = static_cast<float>(config_.weight_decay);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (!p.trainable) continue;
    const std::size_t n = p.numel();
    sgd_update({p.value.data(), n}, {p.grad.data(), n},
               {velocity_[i].data(), velocity_[i].size()}, lr, mu, wd);
  }
}

std::size_t Sgd::velocity_size() const {
  std::size_t total = 0;
  for (const auto& v : velocity_) total += v.size();
  return total;
}

void Sgd::save_velocity(std::span<float> dst) const {
  HADFL_CHECK_ARG(dst.size() == velocity_size(),
                  "velocity span size mismatch: " << dst.size() << " for "
                                                  << velocity_size());
  std::size_t offset = 0;
  for (const auto& v : velocity_) {
    std::copy(v.begin(), v.end(), dst.begin() + offset);
    offset += v.size();
  }
}

void Sgd::load_velocity(std::span<const float> src) {
  HADFL_CHECK_ARG(src.size() == velocity_size(),
                  "velocity span size mismatch: " << src.size() << " for "
                                                  << velocity_size());
  std::size_t offset = 0;
  for (auto& v : velocity_) {
    std::copy(src.begin() + offset, src.begin() + offset + v.size(),
              v.begin());
    offset += v.size();
  }
}

void Sgd::step_and_zero() {
  step();
  zero_grad();
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

WarmupSchedule::WarmupSchedule(double base_lr, double warmup_lr,
                               int warmup_epochs)
    : base_lr_(base_lr), warmup_lr_(warmup_lr), warmup_epochs_(warmup_epochs) {
  HADFL_CHECK_ARG(base_lr > 0.0 && warmup_lr > 0.0,
                  "learning rates must be positive");
  HADFL_CHECK_ARG(warmup_epochs >= 0, "warmup epochs must be non-negative");
}

double WarmupSchedule::lr_at_epoch(int epoch) const {
  return epoch < warmup_epochs_ ? warmup_lr_ : base_lr_;
}

StepDecaySchedule::StepDecaySchedule(WarmupSchedule warmup, int step_epochs,
                                     double decay_factor)
    : warmup_(warmup),
      step_epochs_(step_epochs),
      decay_factor_(decay_factor) {
  HADFL_CHECK_ARG(step_epochs > 0, "decay step must be positive");
  HADFL_CHECK_ARG(decay_factor > 0.0 && decay_factor <= 1.0,
                  "decay factor must be in (0, 1]");
}

double StepDecaySchedule::lr_at_epoch(int epoch) const {
  if (epoch < warmup_.warmup_epochs()) return warmup_.lr_at_epoch(epoch);
  const int steps = (epoch - warmup_.warmup_epochs()) / step_epochs_;
  double lr = warmup_.base_lr();
  for (int i = 0; i < steps; ++i) lr *= decay_factor_;
  return lr;
}

}  // namespace hadfl::nn
