// Layer abstraction for the from-scratch NN library.
//
// There is no autograd: every layer implements its own backward pass and
// caches whatever it needs from the preceding forward call. The training
// loop drives forward(batch) -> loss -> backward(grad) -> optimizer.step().
//
// Parameters carry their own gradient buffer. Non-trainable parameters
// (batch-norm running statistics) participate in model synchronization /
// aggregation but are skipped by optimizers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hadfl::nn {

/// A named tensor owned by a layer, with an associated gradient buffer.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;          ///< same shape as value; zero for non-trainable
  bool trainable = true;
  std::size_t fan_in = 0;  ///< contraction width; set by layers that want
                           ///< fan-in-scaled initialization

  Parameter(std::string n, Tensor v, bool train = true)
      : name(std::move(n)),
        value(std::move(v)),
        grad(value.shape()),
        trainable(train) {}

  std::size_t numel() const { return value.numel(); }
  void zero_grad() { grad.fill(0.0f); }
};

/// Abstract differentiable layer.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output. `training` selects train-time behaviour
  /// (batch statistics, dropout, ...). Implementations may cache activations
  /// needed by backward; backward must be preceded by forward.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Propagates `grad_output` (dL/d output) to dL/d input, accumulating
  /// parameter gradients along the way.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All parameters (trainable and buffers), in a stable order.
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace hadfl::nn
