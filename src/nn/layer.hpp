// Layer abstraction for the from-scratch NN library.
//
// There is no autograd: every layer implements its own backward pass and
// caches whatever it needs from the preceding forward call. The training
// loop drives forward(batch) -> loss -> backward(grad) -> optimizer.step().
//
// Parameters carry their own gradient buffer. Non-trainable parameters
// (batch-norm running statistics) participate in model synchronization /
// aggregation but are skipped by optimizers.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hadfl::nn {

/// A named tensor owned by a layer, with an associated gradient buffer.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;          ///< same shape as value; zero for non-trainable
  bool trainable = true;
  std::size_t fan_in = 0;  ///< contraction width; set by layers that want
                           ///< fan-in-scaled initialization

  Parameter(std::string n, Tensor v, bool train = true)
      : name(std::move(n)),
        value(std::move(v)),
        grad(value.shape()),
        trainable(train) {}

  std::size_t numel() const { return value.numel(); }
  void zero_grad() { grad.fill(0.0f); }
};

/// Abstract differentiable layer.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output. `training` selects train-time behaviour
  /// (batch statistics, dropout, ...). Implementations may cache activations
  /// needed by backward; backward must be preceded by forward.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Propagates `grad_output` (dL/d output) to dL/d input, accumulating
  /// parameter gradients along the way.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All parameters (trainable and buffers), in a stable order.
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;

  // ---- Contiguous state (arena-backed models) ---------------------------
  // Models that pack their parameters into a ParameterArena expose the full
  // flat state and the trainable-gradient slice as O(1) spans. The default
  // (non-packed) implementation reports empty views; nn::load_state falls
  // back to per-parameter copies in that case.

  /// True when parameters live in a contiguous arena and the views below
  /// are valid.
  virtual bool packed() const { return false; }

  /// The model's full flat state (parameters + buffers) in parameters()
  /// order, or an empty span when not packed.
  virtual std::span<float> state_view() { return {}; }

  /// The trainable parameters' gradients, contiguous, or an empty span
  /// when not packed.
  virtual std::span<float> grad_view() { return {}; }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace hadfl::nn
