#include "nn/initializers.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hadfl::nn {

void he_normal(Parameter& weight, std::size_t fan_in, Rng& rng) {
  HADFL_CHECK_ARG(fan_in > 0, "he_normal requires positive fan_in");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < weight.numel(); ++i) {
    weight.value[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void initialize_model(Layer& model, Rng& rng) {
  for (Parameter* p : model.parameters()) {
    if (!p->trainable || p->fan_in == 0) continue;
    he_normal(*p, p->fan_in, rng);
  }
}

}  // namespace hadfl::nn
