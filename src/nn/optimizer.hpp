// SGD optimizer with momentum and weight decay, plus the warm-up learning
// rate schedule used by HADFL's mutual-negotiation phase (paper §III-B: a
// small learning rate during the first E_warmup epochs stabilizes early
// training; the main phase uses the configured base rate).
#pragma once

#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace hadfl::nn {

struct SgdConfig {
  double learning_rate = 0.01;
  double momentum = 0.0;
  double weight_decay = 0.0;
};

/// Stateful SGD over a fixed parameter set (momentum buffers are keyed by
/// position, so the parameter list must not change between steps).
class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdConfig config);

  /// Applies one update using accumulated gradients, then the caller is
  /// expected to zero gradients (or call step_and_zero).
  void step();

  void step_and_zero();

  void zero_grad();

  void set_learning_rate(double lr) { config_.learning_rate = lr; }
  double learning_rate() const { return config_.learning_rate; }
  const SgdConfig& config() const { return config_; }

  /// Total momentum-buffer floats across trainable parameters — the flat
  /// velocity layout mirrors nn::state_size so fleet engines can persist
  /// optimizer state in the same CoW slab shapes as model state.
  std::size_t velocity_size() const;

  /// Copies the momentum buffers into / out of a flat span (trainable
  /// parameters in position order). Sizes must equal velocity_size().
  void save_velocity(std::span<float> dst) const;
  void load_velocity(std::span<const float> src);

 private:
  std::vector<Parameter*> params_;
  SgdConfig config_;
  std::vector<std::vector<float>> velocity_;
};

/// Two-phase learning-rate schedule: `warmup_lr` for the first
/// `warmup_epochs` epochs (mutual negotiation), `base_lr` afterwards.
class WarmupSchedule {
 public:
  WarmupSchedule(double base_lr, double warmup_lr, int warmup_epochs);

  double lr_at_epoch(int epoch) const;

  int warmup_epochs() const { return warmup_epochs_; }
  double base_lr() const { return base_lr_; }

 private:
  double base_lr_;
  double warmup_lr_;
  int warmup_epochs_;
};

/// Step decay on top of the warm-up phase (the ResNet-paper recipe the
/// evaluation models follow at full scale): lr = base * factor^floor(
/// (epoch - warmup) / step_epochs) after warm-up.
class StepDecaySchedule {
 public:
  StepDecaySchedule(WarmupSchedule warmup, int step_epochs,
                    double decay_factor);

  double lr_at_epoch(int epoch) const;

 private:
  WarmupSchedule warmup_;
  int step_epochs_;
  double decay_factor_;
};

}  // namespace hadfl::nn
