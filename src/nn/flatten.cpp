#include "nn/flatten.hpp"

#include "common/error.hpp"

namespace hadfl::nn {

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  HADFL_CHECK_SHAPE(input.ndim() >= 2, "Flatten expects at least 2-d input");
  cached_input_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  return input.reshaped({n, input.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  HADFL_CHECK_SHAPE(grad_output.numel() == shape_numel(cached_input_shape_),
                    "Flatten backward size mismatch");
  return grad_output.reshaped(cached_input_shape_);
}

}  // namespace hadfl::nn
