// Weight initialization.
//
// He (Kaiming) normal initialization for convolution / dense weights, as in
// the ResNet paper the evaluation models follow. Biases, batch-norm betas
// start at zero; batch-norm gammas at one (their constructors do that).
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace hadfl::nn {

/// He-normal: w ~ N(0, sqrt(2 / fan_in)).
void he_normal(Parameter& weight, std::size_t fan_in, Rng& rng);

/// Initializes every trainable parameter that declares a fan_in (dense and
/// conv weights) with He-normal. Biases/betas stay zero; gammas stay 1.
void initialize_model(Layer& model, Rng& rng);

}  // namespace hadfl::nn
