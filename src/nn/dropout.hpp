// Inverted dropout (used by VGG's classifier head in the original paper):
// in training, each activation is zeroed with probability p and the
// survivors are scaled by 1/(1-p); evaluation is the identity.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace hadfl::nn {

class Dropout : public Layer {
 public:
  /// `p` in [0, 1): drop probability. The generator seeds this layer's own
  /// deterministic stream.
  explicit Dropout(double p, std::uint64_t seed = 0x0D0D0D0Dull);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

  double p() const { return p_; }

 private:
  double p_;
  Rng rng_;
  std::vector<float> mask_;  ///< 0 or 1/(1-p) per element of last forward
  Shape cached_shape_;
  bool last_forward_training_ = false;
};

}  // namespace hadfl::nn
