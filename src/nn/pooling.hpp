// Pooling layers over (N, C, H, W).
#pragma once

#include "nn/layer.hpp"

namespace hadfl::nn {

/// Max pooling with square kernel/stride, no padding. Backward routes each
/// output gradient to the argmax input position.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t kernel, std::size_t stride = 0);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  Shape cached_input_shape_;
  std::vector<std::size_t> argmax_;  ///< flat input index per output element
};

/// Global average pooling: (N, C, H, W) -> (N, C).
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace hadfl::nn
