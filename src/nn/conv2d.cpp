#include "nn/conv2d.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "tensor/ops.hpp"

namespace hadfl::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      use_bias_(use_bias),
      weight_("weight",
              Tensor({out_channels, in_channels * kernel * kernel})),
      bias_("bias", Tensor({use_bias ? out_channels : 0})) {
  HADFL_CHECK_ARG(in_channels > 0 && out_channels > 0 && kernel > 0,
                  "Conv2d requires positive channel/kernel sizes");
  HADFL_CHECK_ARG(stride > 0, "Conv2d stride must be positive");
  weight_.fan_in = in_channels * kernel * kernel;
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  HADFL_CHECK_SHAPE(input.ndim() == 4 && input.dim(1) == in_channels_,
                    "Conv2d expects (N, " << in_channels_ << ", H, W), got "
                                          << shape_to_string(input.shape()));
  const std::size_t n = input.dim(0);
  geom_ = ops::ConvGeometry{in_channels_, input.dim(2), input.dim(3),
                            kernel_,      kernel_,      stride_,
                            pad_};
  geom_.validate();
  const std::size_t rows = geom_.col_rows();
  const std::size_t cols = geom_.col_cols();
  const std::size_t batch_cols = n * cols;
  cached_input_shape_ = input.shape();
  if (cached_columns_.shape() != Shape{rows, batch_cols}) {
    cached_columns_ = Tensor({rows, batch_cols});
  }
  fwd_out_.resize(out_channels_ * batch_cols);

  const std::size_t threads = ops::kernel_config().threads();
  const std::size_t image_size = in_channels_ * input.dim(2) * input.dim(3);
  // Unfold the whole batch into one column matrix; samples own disjoint
  // column ranges, so this is parallel over samples.
  float* columns = cached_columns_.data();
  parallel_for_each(
      n,
      [&](std::size_t s) {
        ops::im2col(input.data() + s * image_size, geom_, columns + s * cols,
                    batch_cols);
      },
      threads);

  // One GEMM for the entire batch: (outC, rows) x (rows, N*cols).
  ops::gemm(weight_.value.data(), columns, fwd_out_.data(), out_channels_,
            rows, batch_cols);

  // The GEMM result is channel-major over the batch; scatter back to the
  // (N, outC, OH, OW) layout, fusing the bias add into the copy.
  Tensor out({n, out_channels_, geom_.out_h(), geom_.out_w()});
  parallel_for_each(
      n,
      [&](std::size_t s) {
        for (std::size_t c = 0; c < out_channels_; ++c) {
          const float* HADFL_RESTRICT src =
              fwd_out_.data() + c * batch_cols + s * cols;
          float* HADFL_RESTRICT dst =
              out.data() + (s * out_channels_ + c) * cols;
          const float b = use_bias_ ? bias_.value[c] : 0.0f;
          HADFL_PRAGMA_SIMD
          for (std::size_t i = 0; i < cols; ++i) dst[i] = src[i] + b;
        }
      },
      threads);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::size_t n = cached_input_shape_.empty() ? 0 : cached_input_shape_[0];
  HADFL_CHECK_MSG(n > 0, "Conv2d::backward called before forward");
  const std::size_t rows = geom_.col_rows();
  const std::size_t cols = geom_.col_cols();
  const std::size_t batch_cols = n * cols;
  HADFL_CHECK_SHAPE(
      grad_output.ndim() == 4 && grad_output.dim(0) == n &&
          grad_output.dim(1) == out_channels_ &&
          grad_output.dim(2) == geom_.out_h() &&
          grad_output.dim(3) == geom_.out_w(),
      "Conv2d backward got " << shape_to_string(grad_output.shape()));

  const std::size_t threads = ops::kernel_config().threads();
  // Regather dY channel-major over the batch — the transpose of the
  // forward scatter — so both weight and data GEMMs run over the full
  // (.., N*cols) panels at once.
  grad_out_cols_.resize(out_channels_ * batch_cols);
  parallel_for_each(
      n,
      [&](std::size_t s) {
        for (std::size_t c = 0; c < out_channels_; ++c) {
          const float* HADFL_RESTRICT src =
              grad_output.data() + (s * out_channels_ + c) * cols;
          float* HADFL_RESTRICT dst =
              grad_out_cols_.data() + c * batch_cols + s * cols;
          for (std::size_t i = 0; i < cols; ++i) dst[i] = src[i];
        }
      },
      threads);

  // dW += dY * columns^T — one accumulating GEMM for the whole batch
  // (dY is (outC, N*cols), columns is (rows, N*cols)).
  ops::gemm_bt(grad_out_cols_.data(), cached_columns_.data(),
               weight_.grad.data(), out_channels_, batch_cols, rows, 1.0f,
               1.0f);
  if (use_bias_) {
    for (std::size_t c = 0; c < out_channels_; ++c) {
      bias_.grad[c] += static_cast<float>(ops::sum(
          {grad_out_cols_.data() + c * batch_cols, batch_cols}));
    }
  }

  // d columns = W^T dY over the full panel, then fold back per sample.
  grad_columns_.resize(rows * batch_cols);
  ops::gemm_at(weight_.value.data(), grad_out_cols_.data(),
               grad_columns_.data(), rows, out_channels_, batch_cols);
  Tensor grad_input(cached_input_shape_);
  const std::size_t image_size =
      in_channels_ * cached_input_shape_[2] * cached_input_shape_[3];
  parallel_for_each(
      n,
      [&](std::size_t s) {
        ops::col2im(grad_columns_.data() + s * cols, geom_,
                    grad_input.data() + s * image_size, batch_cols);
      },
      threads);
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace hadfl::nn
