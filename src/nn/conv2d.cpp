#include "nn/conv2d.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace hadfl::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      use_bias_(use_bias),
      weight_("weight",
              Tensor({out_channels, in_channels * kernel * kernel})),
      bias_("bias", Tensor({use_bias ? out_channels : 0})) {
  HADFL_CHECK_ARG(in_channels > 0 && out_channels > 0 && kernel > 0,
                  "Conv2d requires positive channel/kernel sizes");
  HADFL_CHECK_ARG(stride > 0, "Conv2d stride must be positive");
  weight_.fan_in = in_channels * kernel * kernel;
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  HADFL_CHECK_SHAPE(input.ndim() == 4 && input.dim(1) == in_channels_,
                    "Conv2d expects (N, " << in_channels_ << ", H, W), got "
                                          << shape_to_string(input.shape()));
  const std::size_t n = input.dim(0);
  geom_ = ops::ConvGeometry{in_channels_, input.dim(2), input.dim(3),
                            kernel_,      kernel_,      stride_,
                            pad_};
  geom_.validate();
  const std::size_t rows = geom_.col_rows();
  const std::size_t cols = geom_.col_cols();
  cached_input_shape_ = input.shape();
  cached_columns_ = Tensor({n, rows, cols});

  Tensor out({n, out_channels_, geom_.out_h(), geom_.out_w()});
  const std::size_t image_size = in_channels_ * input.dim(2) * input.dim(3);
  for (std::size_t s = 0; s < n; ++s) {
    float* columns = cached_columns_.data() + s * rows * cols;
    ops::im2col(input.data() + s * image_size, geom_, columns);
    float* out_s = out.data() + s * out_channels_ * cols;
    ops::gemm(weight_.value.data(), columns, out_s, out_channels_, rows, cols);
    if (use_bias_) {
      for (std::size_t c = 0; c < out_channels_; ++c) {
        const float b = bias_.value[c];
        float* chan = out_s + c * cols;
        for (std::size_t i = 0; i < cols; ++i) chan[i] += b;
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::size_t n = cached_input_shape_.empty() ? 0 : cached_input_shape_[0];
  HADFL_CHECK_MSG(n > 0, "Conv2d::backward called before forward");
  const std::size_t rows = geom_.col_rows();
  const std::size_t cols = geom_.col_cols();
  HADFL_CHECK_SHAPE(
      grad_output.ndim() == 4 && grad_output.dim(0) == n &&
          grad_output.dim(1) == out_channels_ &&
          grad_output.dim(2) == geom_.out_h() &&
          grad_output.dim(3) == geom_.out_w(),
      "Conv2d backward got " << shape_to_string(grad_output.shape()));

  Tensor grad_input(cached_input_shape_);
  const std::size_t image_size =
      in_channels_ * cached_input_shape_[2] * cached_input_shape_[3];
  std::vector<float> grad_columns(rows * cols);
  for (std::size_t s = 0; s < n; ++s) {
    const float* gy = grad_output.data() + s * out_channels_ * cols;
    const float* columns = cached_columns_.data() + s * rows * cols;
    // dW += dY * columns^T   (dY is (outC, cols), columns is (rows, cols)).
    ops::gemm_bt(gy, columns, weight_.grad.data(), out_channels_, cols, rows,
                 1.0f, 1.0f);
    if (use_bias_) {
      for (std::size_t c = 0; c < out_channels_; ++c) {
        const float* chan = gy + c * cols;
        float acc = 0.0f;
        for (std::size_t i = 0; i < cols; ++i) acc += chan[i];
        bias_.grad[c] += acc;
      }
    }
    // d columns = W^T dY, then fold back with col2im.
    ops::gemm_at(weight_.value.data(), gy, grad_columns.data(), rows,
                 out_channels_, cols);
    ops::col2im(grad_columns.data(), geom_, grad_input.data() + s * image_size);
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace hadfl::nn
