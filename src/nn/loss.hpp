// Softmax cross-entropy loss with integer class targets.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace hadfl::nn {

/// Computes mean softmax cross-entropy over a batch of logits (N, classes)
/// and produces the gradient with respect to the logits.
class SoftmaxCrossEntropy {
 public:
  /// Returns the mean loss. Caches softmax probabilities for backward().
  double forward(const Tensor& logits, const std::vector<int>& targets);

  /// Gradient of the mean loss w.r.t. the logits: (p - onehot) / N.
  Tensor backward() const;

  /// Probabilities from the last forward (N, classes).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> targets_;
};

/// Fraction of rows where argmax(logits) == target.
double accuracy(const Tensor& logits, const std::vector<int>& targets);

}  // namespace hadfl::nn
