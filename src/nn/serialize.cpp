#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace hadfl::nn {

namespace {
constexpr char kMagic[4] = {'H', 'D', 'F', 'L'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_state(const std::string& path, const std::vector<float>& state) {
  std::ofstream out(path, std::ios::binary);
  HADFL_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint64_t count = state.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(state.data()),
            static_cast<std::streamsize>(state.size() * sizeof(float)));
  HADFL_CHECK_MSG(out.good(), "write to " << path << " failed");
}

std::vector<float> load_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HADFL_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  char magic[4];
  in.read(magic, sizeof(magic));
  HADFL_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                  path << " is not a HADFL state file");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  HADFL_CHECK_MSG(in.good() && version == kVersion,
                  "unsupported state file version " << version);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  HADFL_CHECK_MSG(in.good(), "truncated state file " << path);
  std::vector<float> state(count);
  in.read(reinterpret_cast<char*>(state.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  HADFL_CHECK_MSG(in.good(), "truncated state payload in " << path);
  return state;
}

}  // namespace hadfl::nn
