// Contiguous parameter arena: the storage behind zero-copy model state.
//
// A model's parameters are created by its layers as individually owning
// tensors; `pack` migrates them into two contiguous buffers —
//
//  * `values` — every parameter value including non-trainable buffers
//    (batch-norm running statistics), in parameters() order. This is the
//    flat "state" vector that crosses the network, now available as a
//    span without gathering: state_view() IS the model state.
//  * `grads`  — the trainable parameters' gradients only, in the same
//    order with buffers skipped: the exact layout nn::get_gradients
//    produced by copying, now a view.
//
// Packing rebinds each parameter tensor (tensor/tensor.hpp view mode), so
// layers keep reading and writing their parameters exactly as before —
// forward/backward/optimizer code is oblivious — while load_state
// collapses to one memcpy and aggregation streams straight over the spans.
//
// The arena must outlive the parameters bound into it (nn::Sequential owns
// both, in the right order). Packing is idempotent; adding parameters
// after packing is an error the owner guards against.
#pragma once

#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/math_utils.hpp"
#include "nn/layer.hpp"

namespace hadfl::nn {

class ParameterArena {
 public:
  ParameterArena() = default;
  ParameterArena(const ParameterArena&) = delete;
  ParameterArena& operator=(const ParameterArena&) = delete;

  /// Migrates every parameter into the arena. Current values/gradients are
  /// preserved. No-op when already packed with the same total sizes.
  void pack(const std::vector<Parameter*>& params);

  bool packed() const { return packed_; }

  /// The full model state (params + buffers), contiguous.
  std::span<float> state_view() { return values_; }
  std::span<const float> state_view() const { return values_; }

  /// The trainable gradients, contiguous.
  std::span<float> grad_view() { return grads_; }
  std::span<const float> grad_view() const { return grads_; }

  /// Chunk `c` of the state when split into `chunks` contiguous segments
  /// (the framework-wide `chunk_range` partition). The rt pipelined
  /// collective and chunked broadcast stream these sub-views straight off
  /// the arena — no per-chunk staging copies.
  std::span<float> state_chunk(std::size_t chunks, std::size_t c) {
    const auto [b, e] = chunk_range(values_.size(), chunks, c);
    return std::span<float>(values_).subspan(b, e - b);
  }
  std::span<const float> state_chunk(std::size_t chunks, std::size_t c) const {
    const auto [b, e] = chunk_range(values_.size(), chunks, c);
    return std::span<const float>(values_).subspan(b, e - b);
  }

 private:
  // 64-byte-aligned slabs: the whole aggregation path (StateAccumulator,
  // mix_spans, the optimizer span kernels) streams over these, and
  // cache-line alignment keeps those vector loops off split lines.
  std::vector<float, AlignedAllocator<float>> values_;
  std::vector<float, AlignedAllocator<float>> grads_;
  bool packed_ = false;
};

}  // namespace hadfl::nn
