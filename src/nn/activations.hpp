// Elementwise activations.
#pragma once

#include "nn/layer.hpp"

namespace hadfl::nn {

/// Rectified linear unit; backward masks by the sign of the forward input.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  std::vector<bool> mask_;
  Shape cached_shape_;
};

}  // namespace hadfl::nn
