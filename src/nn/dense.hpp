// Fully connected layer: y = x W + b, x of shape (N, in), W (in, out).
#pragma once

#include "nn/layer.hpp"

namespace hadfl::nn {

class Dense : public Layer {
 public:
  /// Weights start zero; call an initializer (nn/initializers.hpp) or use
  /// the model-zoo constructors which initialize everything.
  Dense(std::size_t in_features, std::size_t out_features);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace hadfl::nn
