// Model constructors for the evaluation workloads.
//
// The paper trains ResNet-18 and VGG-16 on CIFAR-10. Full-size CNNs are not
// tractable on CPU in a simulation sweep, so the zoo provides
// *structure-faithful scaled variants*: identical block topology (ResNet-18's
// 4 stages x 2 basic blocks; VGG-16's 13 conv + 3 FC layout) with reduced
// channel widths and input resolution. The full-size parameter counts used
// for communication-volume accounting live in nn/model_spec.hpp.
#pragma once

#include <cstddef>
#include <memory>

#include "common/rng.hpp"
#include "nn/sequential.hpp"

namespace hadfl::nn {

/// Which evaluation architecture to instantiate.
enum class Architecture { kMlp, kResNet18Lite, kVgg16Lite };

const char* architecture_name(Architecture arch);

struct ModelConfig {
  std::size_t in_channels = 3;
  std::size_t image_size = 16;   ///< square input H = W
  std::size_t num_classes = 10;
  std::size_t base_channels = 8; ///< width multiplier for the conv models
  std::size_t mlp_hidden = 64;   ///< hidden width for the MLP
};

/// Simple 2-hidden-layer MLP over flattened images — used by fast tests and
/// the quickstart example.
std::unique_ptr<Sequential> make_mlp(const ModelConfig& config, Rng& rng);

/// ResNet-18 topology: 3x3 stem, 4 stages of 2 basic residual blocks with
/// channel doubling and stride-2 downsampling at stage entry, global average
/// pool, linear classifier.
std::unique_ptr<Sequential> make_resnet18_lite(const ModelConfig& config,
                                               Rng& rng);

/// VGG-16 topology: conv blocks of (2, 2, 3, 3, 3) 3x3 convolutions with
/// 2x2 max-pooling between blocks (pooling stops when the spatial size
/// reaches 2), global average pool, two hidden FC layers, classifier.
std::unique_ptr<Sequential> make_vgg16_lite(const ModelConfig& config,
                                            Rng& rng);

/// Dispatch by architecture enum.
std::unique_ptr<Sequential> make_model(Architecture arch,
                                       const ModelConfig& config, Rng& rng);

}  // namespace hadfl::nn
