// Batch normalization over (N, C, H, W) per channel (BatchNorm2d) and over
// (N, D) per feature (BatchNorm1d shares the implementation with H=W=1).
//
// Training mode normalizes with batch statistics (biased variance) and
// updates the running estimates (unbiased variance) with the given momentum;
// evaluation mode normalizes with the running estimates. Running statistics
// are exposed as non-trainable parameters so federated aggregation averages
// them alongside the weights (as averaging state_dicts does in practice).
#pragma once

#include "nn/layer.hpp"

namespace hadfl::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "BatchNorm2d"; }

  std::size_t channels() const { return channels_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  Parameter& running_mean() { return running_mean_; }
  Parameter& running_var() { return running_var_; }

 private:
  std::size_t channels_;
  float eps_;
  float momentum_;
  Parameter gamma_;
  Parameter beta_;
  Parameter running_mean_;  ///< non-trainable buffer
  Parameter running_var_;   ///< non-trainable buffer

  // Caches from the last training forward, needed by backward.
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  Shape cached_shape_;
  bool last_forward_training_ = false;
};

}  // namespace hadfl::nn
