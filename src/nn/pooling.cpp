#include "nn/pooling.hpp"

#include <limits>

#include "common/error.hpp"

namespace hadfl::nn {

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  HADFL_CHECK_ARG(kernel_ > 0, "MaxPool2d kernel must be positive");
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  HADFL_CHECK_SHAPE(input.ndim() == 4, "MaxPool2d expects (N, C, H, W), got "
                                           << shape_to_string(input.shape()));
  const std::size_t n = input.dim(0);
  const std::size_t c = input.dim(1);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  HADFL_CHECK_SHAPE(h >= kernel_ && w >= kernel_,
                    "MaxPool2d kernel " << kernel_ << " larger than input "
                                        << h << "x" << w);
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;

  cached_input_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  argmax_.assign(out.numel(), 0);

  std::size_t out_idx = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* chan = input.data() + (s * c + ch) * h * w;
      const std::size_t chan_base = (s * c + ch) * h * w;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t idx =
                  (y * stride_ + ky) * w + (x * stride_ + kx);
              if (chan[idx] > best) {
                best = chan[idx];
                best_idx = idx;
              }
            }
          }
          out[out_idx] = best;
          argmax_[out_idx] = chan_base + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  HADFL_CHECK_SHAPE(grad_output.numel() == argmax_.size(),
                    "MaxPool2d backward size mismatch");
  Tensor grad_input(cached_input_shape_);
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  HADFL_CHECK_SHAPE(input.ndim() == 4, "GlobalAvgPool expects (N, C, H, W)");
  const std::size_t n = input.dim(0);
  const std::size_t c = input.dim(1);
  const std::size_t hw = input.dim(2) * input.dim(3);
  HADFL_CHECK_ARG(hw > 0, "GlobalAvgPool on empty spatial dims");
  cached_input_shape_ = input.shape();
  Tensor out({n, c});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* chan = input.data() + (s * c + ch) * hw;
      double acc = 0.0;
      for (std::size_t i = 0; i < hw; ++i) acc += chan[i];
      out[s * c + ch] = static_cast<float>(acc / static_cast<double>(hw));
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  const std::size_t n = cached_input_shape_[0];
  const std::size_t c = cached_input_shape_[1];
  const std::size_t hw = cached_input_shape_[2] * cached_input_shape_[3];
  HADFL_CHECK_SHAPE(grad_output.ndim() == 2 && grad_output.dim(0) == n &&
                        grad_output.dim(1) == c,
                    "GlobalAvgPool backward got "
                        << shape_to_string(grad_output.shape()));
  Tensor grad_input(cached_input_shape_);
  const auto scale = 1.0f / static_cast<float>(hw);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_output[s * c + ch] * scale;
      float* chan = grad_input.data() + (s * c + ch) * hw;
      for (std::size_t i = 0; i < hw; ++i) chan[i] = g;
    }
  }
  return grad_input;
}

}  // namespace hadfl::nn
