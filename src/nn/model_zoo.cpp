#include "nn/model_zoo.hpp"

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/initializers.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"

namespace hadfl::nn {

const char* architecture_name(Architecture arch) {
  switch (arch) {
    case Architecture::kMlp: return "MLP";
    case Architecture::kResNet18Lite: return "ResNet-18";
    case Architecture::kVgg16Lite: return "VGG-16";
  }
  return "?";
}

std::unique_ptr<Sequential> make_mlp(const ModelConfig& config, Rng& rng) {
  HADFL_CHECK_ARG(config.mlp_hidden > 0, "MLP hidden width must be positive");
  const std::size_t in =
      config.in_channels * config.image_size * config.image_size;
  auto model = std::make_unique<Sequential>();
  model->emplace<Flatten>();
  model->emplace<Dense>(in, config.mlp_hidden);
  model->emplace<ReLU>();
  model->emplace<Dense>(config.mlp_hidden, config.mlp_hidden);
  model->emplace<ReLU>();
  model->emplace<Dense>(config.mlp_hidden, config.num_classes);
  initialize_model(*model, rng);
  model->pack();
  return model;
}

std::unique_ptr<Sequential> make_resnet18_lite(const ModelConfig& config,
                                               Rng& rng) {
  HADFL_CHECK_ARG(config.base_channels > 0, "base_channels must be positive");
  HADFL_CHECK_ARG(config.image_size >= 8,
                  "ResNet-18 lite needs image_size >= 8 (3 downsamples)");
  const std::size_t b = config.base_channels;
  auto model = std::make_unique<Sequential>();
  // Stem (the CIFAR variant of ResNet-18: 3x3 stride-1 stem, no max-pool).
  model->emplace<Conv2d>(config.in_channels, b, 3, 1, 1, /*use_bias=*/false);
  model->emplace<BatchNorm2d>(b);
  model->emplace<ReLU>();
  // Four stages of two basic blocks each; stages 2-4 downsample by 2 and
  // double the channel count, exactly the ResNet-18 layout.
  model->emplace<ResidualBlock>(b, b, 1);
  model->emplace<ResidualBlock>(b, b, 1);
  model->emplace<ResidualBlock>(b, 2 * b, 2);
  model->emplace<ResidualBlock>(2 * b, 2 * b, 1);
  model->emplace<ResidualBlock>(2 * b, 4 * b, 2);
  model->emplace<ResidualBlock>(4 * b, 4 * b, 1);
  model->emplace<ResidualBlock>(4 * b, 8 * b, 2);
  model->emplace<ResidualBlock>(8 * b, 8 * b, 1);
  model->emplace<GlobalAvgPool>();
  model->emplace<Dense>(8 * b, config.num_classes);
  initialize_model(*model, rng);
  model->pack();
  return model;
}

std::unique_ptr<Sequential> make_vgg16_lite(const ModelConfig& config,
                                            Rng& rng) {
  HADFL_CHECK_ARG(config.base_channels > 0, "base_channels must be positive");
  HADFL_CHECK_ARG(config.image_size >= 8,
                  "VGG-16 lite needs image_size >= 8");
  const std::size_t b = config.base_channels;
  // VGG-16 conv plan: widths x block = (1b x2, 2b x2, 4b x3, 8b x3, 8b x3).
  const std::size_t widths[5] = {b, 2 * b, 4 * b, 8 * b, 8 * b};
  const std::size_t depth[5] = {2, 2, 3, 3, 3};

  auto model = std::make_unique<Sequential>();
  std::size_t channels = config.in_channels;
  std::size_t spatial = config.image_size;
  for (std::size_t block = 0; block < 5; ++block) {
    for (std::size_t d = 0; d < depth[block]; ++d) {
      model->emplace<Conv2d>(channels, widths[block], 3, 1, 1,
                             /*use_bias=*/false);
      model->emplace<BatchNorm2d>(widths[block]);
      model->emplace<ReLU>();
      channels = widths[block];
    }
    // Full VGG pools after every block; at reduced resolution we stop
    // pooling once the spatial size reaches 2 so later blocks still see a
    // non-degenerate feature map.
    if (spatial >= 4) {
      model->emplace<MaxPool2d>(2, 2);
      spatial /= 2;
    }
  }
  model->emplace<GlobalAvgPool>();
  // VGG's classifier: two hidden FC layers then the output layer.
  model->emplace<Dense>(channels, 4 * b);
  model->emplace<ReLU>();
  model->emplace<Dense>(4 * b, 4 * b);
  model->emplace<ReLU>();
  model->emplace<Dense>(4 * b, config.num_classes);
  initialize_model(*model, rng);
  model->pack();
  return model;
}

std::unique_ptr<Sequential> make_model(Architecture arch,
                                       const ModelConfig& config, Rng& rng) {
  switch (arch) {
    case Architecture::kMlp: return make_mlp(config, rng);
    case Architecture::kResNet18Lite: return make_resnet18_lite(config, rng);
    case Architecture::kVgg16Lite: return make_vgg16_lite(config, rng);
  }
  throw InvalidArgument("unknown architecture");
}

}  // namespace hadfl::nn
