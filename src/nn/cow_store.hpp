// Copy-on-write store of flat model states (fleet-scale model dedup).
//
// A fleet of K devices mostly holds *identical* model state: everyone
// starts from the same dispatched init, ring members collapse onto the
// round's aggregate, and broadcast receivers that shared inputs produce
// the same mixed output. The store exploits that by giving every device a
// handle (slab id) into a refcounted set of slabs; devices that share
// state share one slab, and a device materializes a private copy only when
// it is about to be written (training). Resident model memory is therefore
// O(distinct states) — the active cohort plus a handful of aggregates —
// instead of O(K).
//
// Slabs are recycled through a free list, so steady-state rounds reuse
// capacity instead of allocating; `peak_slabs`/`peak_bytes` expose the
// high-water mark the fleet bench reports.
//
// Not thread-safe: the fleet trainer mutates handles only on the
// coordinator thread, and pre-detaches private slabs before parallel
// training writes into their (disjoint) spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hadfl::nn {

class CowStateStore {
 public:
  using SlabId = std::uint32_t;
  static constexpr SlabId kNone = ~SlabId{0};

  /// All slabs hold `state_size`-element float states.
  explicit CowStateStore(std::size_t state_size);

  std::size_t state_size() const { return state_size_; }

  /// Creates a new slab holding a copy of `state` (refcount 1).
  SlabId create(std::span<const float> state);

  /// Creates a zero-filled slab (refcount 1) without the caller having to
  /// materialize a state_size() source buffer — the K-device init path for
  /// optimizer-velocity slabs, which all start at zero and share one slab.
  SlabId create_zeroed();

  /// Increments a slab's refcount (a second handle now shares it).
  void retain(SlabId id);

  /// Decrements a slab's refcount; a slab reaching zero is recycled.
  void release(SlabId id);

  /// Read-only view of a slab's state.
  std::span<const float> view(SlabId id) const;

  /// Copy-on-write detach: returns a slab holding the same bits that is
  /// safe to write through `mutable_view`. If `id` is exclusively owned it
  /// is returned unchanged; if shared, the refcount drops, and a private
  /// copy (refcount 1) is returned.
  SlabId detach(SlabId id);

  /// Writable view. The slab must be exclusively owned (refcount 1) —
  /// writing a shared slab would silently mutate every device sharing it.
  std::span<float> mutable_view(SlabId id);

  std::uint32_t refcount(SlabId id) const;

  /// Currently live (refcount > 0) slabs / their total float bytes.
  std::size_t live_slabs() const { return live_slabs_; }
  std::size_t live_bytes() const { return live_slabs_ * slab_bytes(); }

  /// High-water marks since construction.
  std::size_t peak_slabs() const { return peak_slabs_; }
  std::size_t peak_bytes() const { return peak_slabs_ * slab_bytes(); }

  /// Bytes one slab occupies.
  std::size_t slab_bytes() const { return state_size_ * sizeof(float); }

 private:
  void check_live(SlabId id) const;

  std::size_t state_size_;
  std::vector<std::vector<float>> slabs_;   ///< slab id -> storage
  std::vector<std::uint32_t> refcounts_;    ///< 0 = free
  std::vector<SlabId> free_list_;
  std::size_t live_slabs_ = 0;
  std::size_t peak_slabs_ = 0;
};

}  // namespace hadfl::nn
