#include "nn/param_utils.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace hadfl::nn {

std::size_t state_size(Layer& model) {
  if (model.packed()) return model.state_view().size();
  std::size_t n = 0;
  for (const Parameter* p : model.parameters()) n += p->numel();
  return n;
}

std::size_t gradient_size(Layer& model) {
  if (model.packed()) return model.grad_view().size();
  std::size_t n = 0;
  for (const Parameter* p : model.parameters()) {
    if (p->trainable) n += p->numel();
  }
  return n;
}

std::size_t state_bytes(Layer& model) {
  return state_size(model) * sizeof(float);
}

std::span<float> state_view(Layer& model) {
  HADFL_CHECK_MSG(model.packed(),
                  "state_view requires an arena-packed model ("
                      << model.name() << "); call Sequential::pack()");
  return model.state_view();
}

std::span<float> grad_view(Layer& model) {
  HADFL_CHECK_MSG(model.packed(),
                  "grad_view requires an arena-packed model ("
                      << model.name() << "); call Sequential::pack()");
  return model.grad_view();
}

void mix_state(Layer& model, std::span<const float> src, double w) {
  mix_spans(state_view(model), src, w);
}

void StateAccumulator::reset(std::size_t n) {
  acc_.assign(n, 0.0);
  weight_sum_ = 0.0;
}

void StateAccumulator::accumulate(std::span<const float> state, double w) {
  axpy_into(acc_, w, state);
  weight_sum_ += w;
}

void StateAccumulator::write(std::span<float> dst) const {
  HADFL_CHECK_ARG(weight_sum_ != 0.0,
                  "StateAccumulator::write with zero accumulated weight");
  cast_into(dst, acc_);
}

std::vector<float> StateAccumulator::materialize() const {
  std::vector<float> out(acc_.size());
  write(out);
  return out;
}

void load_state(Layer& model, std::span<const float> state) {
  HADFL_CHECK_SHAPE(state.size() == state_size(model),
                    "state size " << state.size() << " != model state size "
                                  << state_size(model));
  if (model.packed()) {
    const auto v = model.state_view();
    std::copy_n(state.data(), state.size(), v.data());
    return;
  }
  std::size_t offset = 0;
  for (Parameter* p : model.parameters()) {
    std::copy_n(state.data() + offset, p->numel(), p->value.data());
    offset += p->numel();
  }
}

std::vector<float> get_gradients(Layer& model) {
  if (model.packed()) {
    const auto g = model.grad_view();
    return std::vector<float>(g.begin(), g.end());
  }
  std::vector<float> out;
  out.reserve(gradient_size(model));
  for (const Parameter* p : model.parameters()) {
    if (!p->trainable) continue;
    const float* g = p->grad.data();
    out.insert(out.end(), g, g + p->numel());
  }
  return out;
}

void set_gradients(Layer& model, std::span<const float> grads) {
  HADFL_CHECK_SHAPE(grads.size() == gradient_size(model),
                    "gradient size " << grads.size()
                                     << " != model gradient size "
                                     << gradient_size(model));
  if (model.packed()) {
    const auto g = model.grad_view();
    std::copy_n(grads.data(), grads.size(), g.data());
    return;
  }
  std::size_t offset = 0;
  for (Parameter* p : model.parameters()) {
    if (!p->trainable) continue;
    std::copy_n(grads.data() + offset, p->numel(), p->grad.data());
    offset += p->numel();
  }
}

void zero_gradients(Layer& model) {
  if (model.packed()) {
    const auto g = model.grad_view();
    std::fill_n(g.data(), g.size(), 0.0f);
    // Non-trainable buffers have no live gradient in the arena; their
    // per-parameter grad tensors stay zero by construction.
    return;
  }
  for (Parameter* p : model.parameters()) p->zero_grad();
}

std::vector<float> weighted_average(
    const std::vector<std::vector<float>>& states,
    const std::vector<double>& weights) {
  HADFL_CHECK_ARG(!states.empty(), "weighted_average of zero states");
  HADFL_CHECK_ARG(states.size() == weights.size(),
                  "states/weights count mismatch: " << states.size() << " vs "
                                                    << weights.size());
  const std::size_t n = states.front().size();
  StateAccumulator acc;
  acc.reset(n);
  for (std::size_t k = 0; k < states.size(); ++k) {
    HADFL_CHECK_SHAPE(states[k].size() == n,
                      "state " << k << " has size " << states[k].size()
                               << ", expected " << n);
    acc.accumulate(states[k], weights[k]);
  }
  return acc.materialize();
}

std::vector<float> average(const std::vector<std::vector<float>>& states) {
  HADFL_CHECK_ARG(!states.empty(), "average of zero states");
  const double w = 1.0 / static_cast<double>(states.size());
  return weighted_average(states, std::vector<double>(states.size(), w));
}

void mix_into(std::span<float> dst, std::span<const float> src, double w) {
  mix_spans(dst, src, w);
}

void mix_into(std::vector<float>& dst, std::span<const float> src, double w) {
  mix_spans(dst, src, w);
}

}  // namespace hadfl::nn
