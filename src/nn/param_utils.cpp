#include "nn/param_utils.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hadfl::nn {

std::size_t state_size(Layer& model) {
  std::size_t n = 0;
  for (const Parameter* p : model.parameters()) n += p->numel();
  return n;
}

std::size_t gradient_size(Layer& model) {
  std::size_t n = 0;
  for (const Parameter* p : model.parameters()) {
    if (p->trainable) n += p->numel();
  }
  return n;
}

std::size_t state_bytes(Layer& model) {
  return state_size(model) * sizeof(float);
}

std::vector<float> get_state(Layer& model) {
  std::vector<float> out;
  out.reserve(state_size(model));
  for (const Parameter* p : model.parameters()) {
    const auto& v = p->value.storage();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

void set_state(Layer& model, std::span<const float> state) {
  HADFL_CHECK_SHAPE(state.size() == state_size(model),
                    "state size " << state.size() << " != model state size "
                                  << state_size(model));
  std::size_t offset = 0;
  for (Parameter* p : model.parameters()) {
    std::copy_n(state.data() + offset, p->numel(), p->value.data());
    offset += p->numel();
  }
}

std::vector<float> get_gradients(Layer& model) {
  std::vector<float> out;
  out.reserve(gradient_size(model));
  for (const Parameter* p : model.parameters()) {
    if (!p->trainable) continue;
    const auto& g = p->grad.storage();
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

void set_gradients(Layer& model, std::span<const float> grads) {
  HADFL_CHECK_SHAPE(grads.size() == gradient_size(model),
                    "gradient size " << grads.size()
                                     << " != model gradient size "
                                     << gradient_size(model));
  std::size_t offset = 0;
  for (Parameter* p : model.parameters()) {
    if (!p->trainable) continue;
    std::copy_n(grads.data() + offset, p->numel(), p->grad.data());
    offset += p->numel();
  }
}

void zero_gradients(Layer& model) {
  for (Parameter* p : model.parameters()) p->zero_grad();
}

std::vector<float> weighted_average(
    const std::vector<std::vector<float>>& states,
    const std::vector<double>& weights) {
  HADFL_CHECK_ARG(!states.empty(), "weighted_average of zero states");
  HADFL_CHECK_ARG(states.size() == weights.size(),
                  "states/weights count mismatch: " << states.size() << " vs "
                                                    << weights.size());
  const std::size_t n = states.front().size();
  std::vector<double> acc(n, 0.0);
  for (std::size_t k = 0; k < states.size(); ++k) {
    HADFL_CHECK_SHAPE(states[k].size() == n,
                      "state " << k << " has size " << states[k].size()
                               << ", expected " << n);
    const double w = weights[k];
    for (std::size_t i = 0; i < n; ++i) acc[i] += w * states[k][i];
  }
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

std::vector<float> average(const std::vector<std::vector<float>>& states) {
  HADFL_CHECK_ARG(!states.empty(), "average of zero states");
  const double w = 1.0 / static_cast<double>(states.size());
  return weighted_average(states, std::vector<double>(states.size(), w));
}

void mix_into(std::vector<float>& dst, std::span<const float> src, double w) {
  HADFL_CHECK_SHAPE(dst.size() == src.size(), "mix_into size mismatch");
  HADFL_CHECK_ARG(w >= 0.0 && w <= 1.0, "mix weight must be in [0,1], got " << w);
  const auto wf = static_cast<float>(w);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = (1.0f - wf) * dst[i] + wf * src[i];
  }
}

}  // namespace hadfl::nn
