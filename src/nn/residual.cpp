#include "nn/residual.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace hadfl::nn {

ResidualBlock::ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                             std::size_t stride)
    : conv1_(in_channels, out_channels, 3, stride, 1, /*use_bias=*/false),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, /*use_bias=*/false),
      bn2_(out_channels) {
  if (stride != 1 || in_channels != out_channels) {
    proj_conv_.emplace(in_channels, out_channels, 1, stride, 0,
                       /*use_bias=*/false);
    proj_bn_.emplace(out_channels);
  }
}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
  Tensor main = conv1_.forward(input, training);
  main = bn1_.forward(main, training);
  main = relu1_.forward(main, training);
  main = conv2_.forward(main, training);
  main = bn2_.forward(main, training);

  Tensor shortcut = input;
  if (proj_conv_) {
    shortcut = proj_conv_->forward(input, training);
    shortcut = proj_bn_->forward(shortcut, training);
  }

  HADFL_CHECK_SHAPE(main.shape() == shortcut.shape(),
                    "residual add shape mismatch: "
                        << shape_to_string(main.shape()) << " vs "
                        << shape_to_string(shortcut.shape()));
  Tensor out = ops::add(main, shortcut);
  out_relu_mask_.assign(out.numel(), false);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    const bool positive = out[i] > 0.0f;
    out_relu_mask_[i] = positive;
    if (!positive) out[i] = 0.0f;
  }
  return out;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  HADFL_CHECK_SHAPE(grad_output.numel() == out_relu_mask_.size(),
                    "ResidualBlock backward before forward");
  Tensor g(grad_output.shape());
  for (std::size_t i = 0; i < g.numel(); ++i) {
    g[i] = out_relu_mask_[i] ? grad_output[i] : 0.0f;
  }

  // Main path.
  Tensor g_main = bn2_.backward(g);
  g_main = conv2_.backward(g_main);
  g_main = relu1_.backward(g_main);
  g_main = bn1_.backward(g_main);
  g_main = conv1_.backward(g_main);

  // Shortcut path.
  Tensor g_short = g;
  if (proj_conv_) {
    g_short = proj_bn_->backward(g_short);
    g_short = proj_conv_->backward(g_short);
  }
  return ops::add(g_main, g_short);
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> params;
  auto append = [&params](Layer& l) {
    for (Parameter* p : l.parameters()) params.push_back(p);
  };
  append(conv1_);
  append(bn1_);
  append(conv2_);
  append(bn2_);
  if (proj_conv_) {
    append(*proj_conv_);
    append(*proj_bn_);
  }
  return params;
}

}  // namespace hadfl::nn
