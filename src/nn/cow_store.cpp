#include "nn/cow_store.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hadfl::nn {

CowStateStore::CowStateStore(std::size_t state_size)
    : state_size_(state_size) {
  HADFL_CHECK_ARG(state_size_ > 0, "CowStateStore with zero state size");
}

CowStateStore::SlabId CowStateStore::create(std::span<const float> state) {
  HADFL_CHECK_SHAPE(state.size() == state_size_,
                    "CowStateStore::create size mismatch: " << state.size()
                                                            << " vs "
                                                            << state_size_);
  SlabId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<SlabId>(slabs_.size());
    slabs_.emplace_back();
    refcounts_.push_back(0);
  }
  std::vector<float>& slab = slabs_[id];
  slab.resize(state_size_);
  std::copy(state.begin(), state.end(), slab.begin());
  refcounts_[id] = 1;
  ++live_slabs_;
  peak_slabs_ = std::max(peak_slabs_, live_slabs_);
  return id;
}

CowStateStore::SlabId CowStateStore::create_zeroed() {
  SlabId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<SlabId>(slabs_.size());
    slabs_.emplace_back();
    refcounts_.push_back(0);
  }
  std::vector<float>& slab = slabs_[id];
  slab.assign(state_size_, 0.0f);
  refcounts_[id] = 1;
  ++live_slabs_;
  peak_slabs_ = std::max(peak_slabs_, live_slabs_);
  return id;
}

void CowStateStore::retain(SlabId id) {
  check_live(id);
  ++refcounts_[id];
}

void CowStateStore::release(SlabId id) {
  check_live(id);
  if (--refcounts_[id] == 0) {
    free_list_.push_back(id);
    --live_slabs_;
  }
}

std::span<const float> CowStateStore::view(SlabId id) const {
  check_live(id);
  return {slabs_[id].data(), state_size_};
}

CowStateStore::SlabId CowStateStore::detach(SlabId id) {
  check_live(id);
  if (refcounts_[id] == 1) return id;
  --refcounts_[id];
  // The source span stays valid across create(): outer-vector growth moves
  // the inner std::vector (its heap buffer pointer is preserved), and the
  // reused free slot can never be `id` itself (its refcount is nonzero).
  return create({slabs_[id].data(), state_size_});
}

std::span<float> CowStateStore::mutable_view(SlabId id) {
  check_live(id);
  HADFL_CHECK_ARG(refcounts_[id] == 1,
                  "mutable_view of shared slab " << id << " (refcount "
                                                 << refcounts_[id] << ")");
  return {slabs_[id].data(), state_size_};
}

std::uint32_t CowStateStore::refcount(SlabId id) const {
  check_live(id);
  return refcounts_[id];
}

void CowStateStore::check_live(SlabId id) const {
  HADFL_CHECK_ARG(id < slabs_.size() && refcounts_[id] > 0,
                  "CowStateStore: slab " << id << " is not live");
}

}  // namespace hadfl::nn
