// Flatten (N, ...) -> (N, prod(...)).
#pragma once

#include "nn/layer.hpp"

namespace hadfl::nn {

class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace hadfl::nn
