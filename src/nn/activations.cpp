#include "nn/activations.hpp"

#include "common/error.hpp"

namespace hadfl::nn {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  cached_shape_ = input.shape();
  mask_.assign(input.numel(), false);
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool positive = input[i] > 0.0f;
    mask_[i] = positive;
    out[i] = positive ? input[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  HADFL_CHECK_SHAPE(grad_output.shape() == cached_shape_,
                    "ReLU backward shape mismatch");
  Tensor grad_input(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = mask_[i] ? grad_output[i] : 0.0f;
  }
  return grad_input;
}

}  // namespace hadfl::nn
