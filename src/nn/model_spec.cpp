#include "nn/model_spec.hpp"

namespace hadfl::nn {

namespace {

std::size_t conv_params(std::size_t in, std::size_t out, std::size_t k,
                        bool bias = false) {
  return in * out * k * k + (bias ? out : 0);
}

std::size_t bn_params(std::size_t channels) { return 2 * channels; }

}  // namespace

ModelSpec resnet18_spec() {
  // CIFAR-style ResNet-18: 3x3 stem (3->64), stages (64, 128, 256, 512) of
  // two basic blocks, 1x1 projection at each downsampling block, FC 512->10.
  std::size_t p = 0;
  p += conv_params(3, 64, 3) + bn_params(64);  // stem
  const std::size_t widths[4] = {64, 128, 256, 512};
  std::size_t in = 64;
  for (std::size_t s = 0; s < 4; ++s) {
    const std::size_t w = widths[s];
    // Block 1 (possibly downsampling with projection).
    p += conv_params(in, w, 3) + bn_params(w);
    p += conv_params(w, w, 3) + bn_params(w);
    if (in != w) p += conv_params(in, w, 1) + bn_params(w);
    // Block 2.
    p += conv_params(w, w, 3) + bn_params(w);
    p += conv_params(w, w, 3) + bn_params(w);
    in = w;
  }
  p += 512 * 10 + 10;  // classifier
  return {"ResNet-18", p};
}

ModelSpec vgg16_spec() {
  // VGG-16 conv backbone + the CIFAR classifier (512 -> 512 -> 10).
  std::size_t p = 0;
  const std::size_t widths[5] = {64, 128, 256, 512, 512};
  const std::size_t depth[5] = {2, 2, 3, 3, 3};
  std::size_t in = 3;
  for (std::size_t b = 0; b < 5; ++b) {
    for (std::size_t d = 0; d < depth[b]; ++d) {
      p += conv_params(in, widths[b], 3, /*bias=*/true) + bn_params(widths[b]);
      in = widths[b];
    }
  }
  p += 512 * 512 + 512;  // fc1
  p += 512 * 10 + 10;    // classifier
  return {"VGG-16", p};
}

}  // namespace hadfl::nn
