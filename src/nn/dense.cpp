#include "nn/dense.hpp"

#include "common/error.hpp"
#include "common/simd.hpp"
#include "tensor/ops.hpp"

namespace hadfl::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_("weight", Tensor({in_features, out_features})),
      bias_("bias", Tensor({out_features})) {
  HADFL_CHECK_ARG(in_features > 0 && out_features > 0,
                  "Dense requires positive feature counts");
  weight_.fan_in = in_features;
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  HADFL_CHECK_SHAPE(input.ndim() == 2 && input.dim(1) == in_,
                    "Dense expects (N, " << in_ << "), got "
                                         << shape_to_string(input.shape()));
  cached_input_ = input;
  const std::size_t n = input.dim(0);
  Tensor out({n, out_});
  ops::gemm(input.data(), weight_.value.data(), out.data(), n, in_, out_);
  const float* HADFL_RESTRICT bias = bias_.value.data();
  for (std::size_t i = 0; i < n; ++i) {
    float* HADFL_RESTRICT row = out.data() + i * out_;
    HADFL_PRAGMA_SIMD
    for (std::size_t j = 0; j < out_; ++j) row[j] += bias[j];
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t n = cached_input_.dim(0);
  HADFL_CHECK_SHAPE(grad_output.ndim() == 2 && grad_output.dim(0) == n &&
                        grad_output.dim(1) == out_,
                    "Dense backward got " << shape_to_string(grad_output.shape()));
  // dW += X^T dY  (X is (n, in) stored row-major, so use gemm_at).
  ops::gemm_at(cached_input_.data(), grad_output.data(), weight_.grad.data(),
               in_, n, out_, 1.0f, 1.0f);
  // db += column sums of dY.
  float* HADFL_RESTRICT bias_grad = bias_.grad.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float* HADFL_RESTRICT row = grad_output.data() + i * out_;
    HADFL_PRAGMA_SIMD
    for (std::size_t j = 0; j < out_; ++j) bias_grad[j] += row[j];
  }
  // dX = dY W^T.
  Tensor grad_input({n, in_});
  ops::gemm_bt(grad_output.data(), weight_.value.data(), grad_input.data(), n,
               out_, in_);
  return grad_input;
}

std::vector<Parameter*> Dense::parameters() { return {&weight_, &bias_}; }

}  // namespace hadfl::nn
