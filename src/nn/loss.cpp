#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hadfl::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<int>& targets) {
  HADFL_CHECK_SHAPE(logits.ndim() == 2,
                    "loss expects (N, classes) logits, got "
                        << shape_to_string(logits.shape()));
  const std::size_t n = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  HADFL_CHECK_ARG(targets.size() == n, "targets size " << targets.size()
                                                       << " != batch " << n);
  HADFL_CHECK_ARG(n > 0, "loss on empty batch");

  probs_ = Tensor({n, classes});
  targets_ = targets;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int t = targets[i];
    HADFL_CHECK_ARG(t >= 0 && static_cast<std::size_t>(t) < classes,
                    "target " << t << " out of range for " << classes
                              << " classes");
    const float* row = logits.data() + i * classes;
    const float max_logit = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(row[c]) - max_logit);
    }
    float* prow = probs_.data() + i * classes;
    for (std::size_t c = 0; c < classes; ++c) {
      prow[c] = static_cast<float>(
          std::exp(static_cast<double>(row[c]) - max_logit) / denom);
    }
    // log-softmax of the target class, computed stably.
    total -= static_cast<double>(row[t]) - max_logit - std::log(denom);
  }
  return total / static_cast<double>(n);
}

Tensor SoftmaxCrossEntropy::backward() const {
  HADFL_CHECK_MSG(probs_.numel() > 0, "loss backward before forward");
  const std::size_t n = probs_.dim(0);
  const std::size_t classes = probs_.dim(1);
  Tensor grad = probs_;
  const auto inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    float* row = grad.data() + i * classes;
    row[static_cast<std::size_t>(targets_[i])] -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) row[c] *= inv_n;
  }
  return grad;
}

double accuracy(const Tensor& logits, const std::vector<int>& targets) {
  HADFL_CHECK_SHAPE(logits.ndim() == 2, "accuracy expects (N, classes)");
  const std::size_t n = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  HADFL_CHECK_ARG(targets.size() == n, "accuracy targets size mismatch");
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * classes;
    const std::size_t pred = static_cast<std::size_t>(
        std::max_element(row, row + classes) - row);
    if (pred == static_cast<std::size_t>(targets[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace hadfl::nn
