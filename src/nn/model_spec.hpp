// Full-size model metadata for analytic accounting.
//
// The communication-volume reproduction (paper §II-B and §III-D) prices
// message sizes with the *true* parameter counts of ResNet-18 and VGG-16,
// independent of the scaled models actually trained.
#pragma once

#include <cstddef>
#include <string>

namespace hadfl::nn {

struct ModelSpec {
  std::string name;
  std::size_t parameters = 0;  ///< trainable parameter count
  std::size_t bytes() const { return parameters * sizeof(float); }
  double megabytes() const {
    return static_cast<double>(bytes()) / (1024.0 * 1024.0);
  }
};

/// ResNet-18 with a 10-class head (CIFAR-10): ~11.17 M parameters.
ModelSpec resnet18_spec();

/// VGG-16 with a 10-class head (CIFAR-10, conv backbone + 512-d classifier
/// as commonly used for CIFAR): ~14.73 M parameters.
ModelSpec vgg16_spec();

}  // namespace hadfl::nn
