#include "nn/sequential.hpp"

#include "common/error.hpp"

namespace hadfl::nn {

Sequential& Sequential::add(LayerPtr layer) {
  HADFL_CHECK_ARG(layer != nullptr, "Sequential::add(nullptr)");
  HADFL_CHECK_MSG(!arena_.packed(),
                  "Sequential::add after pack(): the arena layout is fixed");
  layers_.push_back(std::move(layer));
  return *this;
}

void Sequential::pack() { arena_.pack(parameters()); }

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

Layer& Sequential::layer(std::size_t i) {
  HADFL_CHECK_ARG(i < layers_.size(), "layer index " << i << " out of range");
  return *layers_[i];
}

}  // namespace hadfl::nn
