#include "nn/dropout.hpp"

#include "common/error.hpp"

namespace hadfl::nn {

Dropout::Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  HADFL_CHECK_ARG(p >= 0.0 && p < 1.0,
                  "dropout probability must be in [0, 1), got " << p);
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  cached_shape_ = input.shape();
  last_forward_training_ = training;
  if (!training || p_ == 0.0) {
    mask_.clear();
    return input;
  }
  const auto keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  mask_.assign(input.numel(), 0.0f);
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    if (rng_.uniform() >= p_) {
      mask_[i] = keep_scale;
      out[i] = input[i] * keep_scale;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  HADFL_CHECK_SHAPE(grad_output.shape() == cached_shape_,
                    "Dropout backward shape mismatch");
  if (!last_forward_training_ || p_ == 0.0) return grad_output;
  HADFL_CHECK_MSG(mask_.size() == grad_output.numel(),
                  "Dropout backward before forward");
  Tensor grad_input(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = grad_output[i] * mask_[i];
  }
  return grad_input;
}

}  // namespace hadfl::nn
