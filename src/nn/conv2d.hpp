// 2-d convolution via batched im2col + GEMM.
//
// Input/output layout is (N, C, H, W). The weight is stored as
// (out_channels, in_channels * kh * kw). All N samples unfold into ONE
// (C*KH*KW, N*OH*OW) column matrix (strided im2col, parallel over
// samples), so forward is a single weight GEMM over the whole batch and
// backward is one accumulating GEMM per operand — large, cache-blocked,
// thread-parallel kernels instead of N small ones (tensor/ops.cpp).
#pragma once

#include <vector>

#include "common/aligned.hpp"
#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace hadfl::nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride = 1, std::size_t pad = 0,
         bool use_bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Conv2d"; }

  Parameter& weight() { return weight_; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }

 private:
  using Scratch = std::vector<float, AlignedAllocator<float>>;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t pad_;
  bool use_bias_;
  Parameter weight_;
  Parameter bias_;

  ops::ConvGeometry geom_;        ///< geometry of the last forward
  Tensor cached_columns_;         ///< (col_rows, N * col_cols) unfolded batch
  Shape cached_input_shape_;
  Scratch fwd_out_;               ///< (out_channels, N * col_cols) GEMM output
  Scratch grad_out_cols_;         ///< grad_output regathered channel-major
  Scratch grad_columns_;          ///< (col_rows, N * col_cols) dColumns
};

}  // namespace hadfl::nn
