// 2-d convolution via im2col + GEMM.
//
// Input/output layout is (N, C, H, W). The weight is stored as
// (out_channels, in_channels * kh * kw) so the per-sample forward is a
// single GEMM against the unfolded patch matrix.
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace hadfl::nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride = 1, std::size_t pad = 0,
         bool use_bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Conv2d"; }

  Parameter& weight() { return weight_; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t pad_;
  bool use_bias_;
  Parameter weight_;
  Parameter bias_;

  ops::ConvGeometry geom_;        ///< geometry of the last forward
  Tensor cached_columns_;         ///< (N, col_rows, col_cols) unfolded input
  Shape cached_input_shape_;
};

}  // namespace hadfl::nn
