// Flat-vector views of a model's state — the unit of communication in every
// training scheme in this repo. Aggregation (FedAvg / gossip / all-reduce)
// operates on these flat vectors so it is model-architecture agnostic.
//
// Conventions:
//  * "state"    = all parameters including non-trainable buffers (batch-norm
//                 running statistics). Synchronizing models means exchanging
//                 state vectors.
//  * "gradient" = trainable parameters' gradients only — what the
//                 distributed-training baseline all-reduces each iteration.
#pragma once

#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace hadfl::nn {

/// Total element count of the model state (params + buffers).
std::size_t state_size(Layer& model);

/// Total element count of trainable gradients.
std::size_t gradient_size(Layer& model);

/// Model size in bytes (float32 state) — the "M" of the paper's
/// communication-volume analysis.
std::size_t state_bytes(Layer& model);

/// Copies all parameter values (including buffers) into one flat vector.
std::vector<float> get_state(Layer& model);

/// Writes a flat state vector back into the model. Size must match.
void set_state(Layer& model, std::span<const float> state);

/// Copies trainable gradients into one flat vector.
std::vector<float> get_gradients(Layer& model);

/// Overwrites trainable gradients from a flat vector. Size must match.
void set_gradients(Layer& model, std::span<const float> grads);

/// Zeroes all gradients.
void zero_gradients(Layer& model);

/// dst = sum_i weights[i] * states[i]; all states must have equal size and
/// weights must match states in count. Used by every aggregation rule.
std::vector<float> weighted_average(
    const std::vector<std::vector<float>>& states,
    const std::vector<double>& weights);

/// Convenience uniform average.
std::vector<float> average(const std::vector<std::vector<float>>& states);

/// In-place mix: dst = (1 - w) * dst + w * src. Used when an unselected
/// device integrates a received aggregate with its local model (§III-D).
void mix_into(std::vector<float>& dst, std::span<const float> src, double w);

}  // namespace hadfl::nn
