// Flat-vector views of a model's state — the unit of communication in every
// training scheme in this repo. Aggregation (FedAvg / gossip / all-reduce)
// operates on these flat vectors so it is model-architecture agnostic.
//
// Conventions:
//  * "state"    = all parameters including non-trainable buffers (batch-norm
//                 running statistics). Synchronizing models means exchanging
//                 state vectors.
//  * "gradient" = trainable parameters' gradients only — what the
//                 distributed-training baseline all-reduces each iteration.
//
// Arena-backed models (nn::Sequential after pack(); everything produced by
// the model zoo) hold their whole state contiguously, so the primary API is
// the zero-copy one: state_view()/grad_view() spans, StateAccumulator for
// streaming aggregation, and mix_state for in-place blending. Reading a
// state means iterating (or copying from) state_view(); writing one back
// means load_state(), which is a single bulk copy on packed models. The
// historic get_state/set_state copy shims are gone — callers that need an
// owned snapshot copy out of the view explicitly, which keeps every
// allocation visible at the call site.
#pragma once

#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace hadfl::nn {

/// Total element count of the model state (params + buffers).
std::size_t state_size(Layer& model);

/// Total element count of trainable gradients.
std::size_t gradient_size(Layer& model);

/// Model size in bytes (float32 state) — the "M" of the paper's
/// communication-volume analysis.
std::size_t state_bytes(Layer& model);

// ---- Zero-copy API (packed models) --------------------------------------

/// The model's contiguous state span. Requires a packed model; O(1), no
/// copies — mutations through the span ARE mutations of the model.
std::span<float> state_view(Layer& model);

/// The model's contiguous trainable-gradient span. Requires a packed model.
std::span<float> grad_view(Layer& model);

/// In-place blend of a received state into a packed model:
/// model = (1 - w) * model + w * src. Equivalent to the historic
/// get-mix-set state round trip, without the copies.
void mix_state(Layer& model, std::span<const float> src, double w);

/// Streaming weighted-sum accumulator over flat states. Replaces the
/// materialize-everything weighted_average for hot aggregation paths:
/// contributors are folded in one at a time (double-precision partial sums,
/// same accumulation order == bit-identical result) and the buffer capacity
/// is reused across rounds.
class StateAccumulator {
 public:
  /// Starts a fresh accumulation of `n`-element states. Reuses capacity.
  void reset(std::size_t n);

  /// acc += w * state. Size must match reset(). Order matters for the final
  /// float rounding: fold contributors in the same order the legacy
  /// weighted_average iterated them (slot order, not arrival order).
  void accumulate(std::span<const float> state, double w);

  /// Writes float(acc) into dst. Size must match. Requires a non-zero
  /// accumulated weight sum (an all-zero-weight aggregate is a bug).
  void write(std::span<float> dst) const;

  /// write() into a fresh vector — for callers that need ownership.
  std::vector<float> materialize() const;

  std::size_t size() const { return acc_.size(); }
  double weight_sum() const { return weight_sum_; }

 private:
  std::vector<double> acc_;
  double weight_sum_ = 0.0;
};

/// Loads a flat state vector into the model in place. Size must match
/// state_size(). Packed models take one bulk copy into the arena; unpacked
/// models (hand-built nets before pack()) fall back to per-parameter
/// copies, so deserialization works on any Layer.
void load_state(Layer& model, std::span<const float> state);

// ---- Copying API ---------------------------------------------------------

/// Copies trainable gradients into one flat vector.
std::vector<float> get_gradients(Layer& model);

/// Overwrites trainable gradients from a flat vector. Size must match.
void set_gradients(Layer& model, std::span<const float> grads);

/// Zeroes all gradients.
void zero_gradients(Layer& model);

/// dst = sum_i weights[i] * states[i]; all states must have equal size,
/// weights must match states in count, and the weight sum must be non-zero.
/// Materializes every contributor — prefer StateAccumulator in hot paths.
std::vector<float> weighted_average(
    const std::vector<std::vector<float>>& states,
    const std::vector<double>& weights);

/// Convenience uniform average.
std::vector<float> average(const std::vector<std::vector<float>>& states);

/// In-place mix: dst = (1 - w) * dst + w * src. Used when an unselected
/// device integrates a received aggregate with its local model (§III-D).
void mix_into(std::span<float> dst, std::span<const float> src, double w);
void mix_into(std::vector<float>& dst, std::span<const float> src, double w);

}  // namespace hadfl::nn
