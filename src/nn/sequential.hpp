// Sequential container — the model type used throughout the framework.
#pragma once

#include <memory>
#include <utility>

#include "nn/layer.hpp"

namespace hadfl::nn {

/// Runs child layers in order; backward runs them in reverse.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for chained construction.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace hadfl::nn
