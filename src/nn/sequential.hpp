// Sequential container — the model type used throughout the framework.
#pragma once

#include <memory>
#include <utility>

#include "nn/arena.hpp"
#include "nn/layer.hpp"

namespace hadfl::nn {

/// Runs child layers in order; backward runs them in reverse.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for chained construction.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);

  /// Migrates all parameters into a contiguous arena (values + trainable
  /// gradients), after which state_view()/grad_view() are O(1) spans over
  /// the whole model. Idempotent. Layers may not be added afterwards.
  void pack();

  bool packed() const override { return arena_.packed(); }
  std::span<float> state_view() override { return arena_.state_view(); }
  std::span<float> grad_view() override { return arena_.grad_view(); }

 private:
  std::vector<LayerPtr> layers_;
  ParameterArena arena_;
};

}  // namespace hadfl::nn
