#include "nn/arena.hpp"

#include "common/error.hpp"

namespace hadfl::nn {

void ParameterArena::pack(const std::vector<Parameter*>& params) {
  std::size_t value_count = 0;
  std::size_t grad_count = 0;
  for (const Parameter* p : params) {
    HADFL_CHECK_ARG(p != nullptr, "pack of null parameter");
    value_count += p->numel();
    if (p->trainable) grad_count += p->numel();
  }
  if (packed_) {
    HADFL_CHECK_ARG(
        value_count == values_.size() && grad_count == grads_.size(),
        "re-pack with different parameter set (" << value_count << "/"
                                                 << grad_count << " vs "
                                                 << values_.size() << "/"
                                                 << grads_.size() << ")");
    return;
  }
  values_.resize(value_count);
  grads_.resize(grad_count);
  std::size_t voff = 0;
  std::size_t goff = 0;
  for (Parameter* p : params) {
    const std::size_t n = p->numel();
    p->value.rebind(values_.data() + voff, n);
    voff += n;
    if (p->trainable) {
      p->grad.rebind(grads_.data() + goff, n);
      goff += n;
    }
  }
  packed_ = true;
}

}  // namespace hadfl::nn
