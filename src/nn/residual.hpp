// Basic residual block (ResNet-18 style):
//
//   out = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x) )
//
// where shortcut is identity when shape is preserved, or a strided 1x1
// convolution + BN when the block downsamples / changes channel count.
#pragma once

#include <optional>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"

namespace hadfl::nn {

class ResidualBlock : public Layer {
 public:
  /// stride > 1 (or in != out channels) enables the projection shortcut.
  ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                std::size_t stride = 1);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "ResidualBlock"; }

  bool has_projection() const { return proj_conv_.has_value(); }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  std::optional<Conv2d> proj_conv_;
  std::optional<BatchNorm2d> proj_bn_;

  std::vector<bool> out_relu_mask_;  ///< mask of the post-sum ReLU
};

}  // namespace hadfl::nn
