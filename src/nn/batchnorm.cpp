#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hadfl::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("gamma", Tensor({channels}, 1.0f)),
      beta_("beta", Tensor({channels})),
      running_mean_("running_mean", Tensor({channels}), /*train=*/false),
      running_var_("running_var", Tensor({channels}, 1.0f), /*train=*/false) {
  HADFL_CHECK_ARG(channels > 0, "BatchNorm2d requires positive channel count");
  HADFL_CHECK_ARG(eps > 0.0f, "BatchNorm2d eps must be positive");
  HADFL_CHECK_ARG(momentum > 0.0f && momentum <= 1.0f,
                  "BatchNorm2d momentum must be in (0, 1]");
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  HADFL_CHECK_SHAPE(input.ndim() == 4 && input.dim(1) == channels_,
                    "BatchNorm2d expects (N, " << channels_ << ", H, W), got "
                                               << shape_to_string(input.shape()));
  const std::size_t n = input.dim(0);
  const std::size_t hw = input.dim(2) * input.dim(3);
  const std::size_t m = n * hw;  // elements per channel
  HADFL_CHECK_ARG(m > 0, "BatchNorm2d on empty batch");

  cached_shape_ = input.shape();
  last_forward_training_ = training;
  Tensor out(input.shape());

  if (training) {
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_.assign(channels_, 0.0f);
  }

  for (std::size_t c = 0; c < channels_; ++c) {
    float mu;
    float var;
    if (training) {
      double sum = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        const float* chan = input.data() + (s * channels_ + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) sum += chan[i];
      }
      mu = static_cast<float>(sum / static_cast<double>(m));
      double ss = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        const float* chan = input.data() + (s * channels_ + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          const double d = chan[i] - mu;
          ss += d * d;
        }
      }
      var = static_cast<float>(ss / static_cast<double>(m));  // biased
      // Running stats use the unbiased variance, matching common practice.
      const float unbiased =
          m > 1 ? static_cast<float>(ss / static_cast<double>(m - 1)) : var;
      running_mean_.value[c] =
          (1.0f - momentum_) * running_mean_.value[c] + momentum_ * mu;
      running_var_.value[c] =
          (1.0f - momentum_) * running_var_.value[c] + momentum_ * unbiased;
    } else {
      mu = running_mean_.value[c];
      var = running_var_.value[c];
    }

    const float inv_std = 1.0f / std::sqrt(var + eps_);
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    if (training) cached_inv_std_[c] = inv_std;
    for (std::size_t s = 0; s < n; ++s) {
      const float* chan = input.data() + (s * channels_ + c) * hw;
      float* out_chan = out.data() + (s * channels_ + c) * hw;
      float* xhat_chan = training
                             ? cached_xhat_.data() + (s * channels_ + c) * hw
                             : nullptr;
      for (std::size_t i = 0; i < hw; ++i) {
        const float xhat = (chan[i] - mu) * inv_std;
        if (xhat_chan) xhat_chan[i] = xhat;
        out_chan[i] = g * xhat + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  HADFL_CHECK_MSG(last_forward_training_,
                  "BatchNorm2d::backward requires a training-mode forward");
  HADFL_CHECK_SHAPE(grad_output.shape() == cached_shape_,
                    "BatchNorm2d backward got "
                        << shape_to_string(grad_output.shape()) << ", expected "
                        << shape_to_string(cached_shape_));
  const std::size_t n = cached_shape_[0];
  const std::size_t hw = cached_shape_[2] * cached_shape_[3];
  const auto m = static_cast<float>(n * hw);

  Tensor grad_input(cached_shape_);
  for (std::size_t c = 0; c < channels_; ++c) {
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const float* dy = grad_output.data() + (s * channels_ + c) * hw;
      const float* xhat = cached_xhat_.data() + (s * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xhat[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const float g = gamma_.value[c];
    const float inv_std = cached_inv_std_[c];
    const float mean_dy = static_cast<float>(sum_dy) / m;
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat) / m;
    for (std::size_t s = 0; s < n; ++s) {
      const float* dy = grad_output.data() + (s * channels_ + c) * hw;
      const float* xhat = cached_xhat_.data() + (s * channels_ + c) * hw;
      float* dx = grad_input.data() + (s * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        dx[i] = g * inv_std * (dy[i] - mean_dy - xhat[i] * mean_dy_xhat);
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() {
  return {&gamma_, &beta_, &running_mean_, &running_var_};
}

}  // namespace hadfl::nn
