// Binary (de)serialization of flat model state — used by the coordinator's
// model manager for periodic backups (paper §III-A step 9).
//
// Format: magic "HDFL", u32 version, u64 element count, raw little-endian
// float32 payload.
#pragma once

#include <string>
#include <vector>

namespace hadfl::nn {

/// Writes a state vector to `path`. Throws hadfl::Error on I/O failure.
void save_state(const std::string& path, const std::vector<float>& state);

/// Reads a state vector from `path`. Throws on I/O failure or bad header.
std::vector<float> load_state(const std::string& path);

}  // namespace hadfl::nn
