// Shared command-line → run-context construction for the driver binaries.
//
// `hadfl_run` and the net backend's per-device `hadfl_node` must build the
// *identical* scenario, environment, partition, and runtime config from the
// same flags — the whole sim/rt/net bit-identity contract rests on every
// process deriving the same state from the same seed. This header is that
// single construction path: hadfl_run uses it directly, and
// `scenario_forward_args` produces the exact flag list the fleet forwards
// so each node re-enters the same path.
//
// The construction order is pinned (scenario → Environment → partition from
// `Rng(seed ^ 0x5151)`) and must not be reordered: the partition RNG stream
// is part of the cross-backend contract.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "data/partition.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "fl/scheme.hpp"
#include "nn/sequential.hpp"
#include "rt/config.hpp"
#include "sim/fault.hpp"

namespace hadfl::exp {

nn::Architecture parse_model(const std::string& name);

/// none | int8 | topk → the shared sync codec (comm/delta_codec.hpp).
/// Throws InvalidArgument on anything else.
core::SyncCompression parse_sync_codec(const std::string& name);

/// The effective --sync-codec value: an explicit --sync-codec wins, else
/// the legacy --int8-broadcast flag is an alias for "int8", else "none".
std::string sync_codec_arg(const ArgParser& args);

/// Validates the codec flags. Returns the empty string when valid, else
/// the one-line diagnostic the drivers print to stderr before exiting
/// with status 2 (the backend_flag_error pattern).
std::string sync_codec_flag_error(const std::string& codec,
                                  double topk_ratio);

/// iid | dirichlet:<alpha> | shards:<n>.
data::Partition parse_partition(const std::string& spec,
                                const data::Dataset& train,
                                std::size_t devices, Rng& rng);

/// Everything a run context needs, with owned storage — fl::SchemeContext
/// holds references, so the Environment and Partition must outlive every
/// context() call.
struct RunSetup {
  Scenario scenario;
  std::unique_ptr<Environment> env;
  data::Partition partition;

  /// A context viewing this setup's environment and partition.
  fl::SchemeContext context() const;
};

/// Builds scenario + environment + partition from the standard flags
/// (--model/--ratio/--epochs/--scale/--seed/--np/--tsync/--policy/--mix/
/// --group-size/--partition/--network/--jitter). Throws InvalidArgument on
/// a malformed value.
RunSetup make_run_setup(const ArgParser& args);

/// The rt/net runtime knobs (--time-scale/--throttle/--wallclock/--die).
/// Codec flags (--sync-codec/--topk-ratio/--sync-chunks) are scenario
/// state and land in make_run_setup. Telemetry stays off — the caller
/// decides based on its output flags.
rt::RtConfig make_rt_config(const ArgParser& args, const Scenario& scenario);

/// The subset of flags a node process needs to rebuild the identical
/// context, re-emitted as --key=value strings. Fault injection (--die) is
/// deliberately NOT forwarded: faults reach remote workers through
/// Command::die_after.
std::vector<std::string> scenario_forward_args(const ArgParser& args);

/// Validates the --scheme/--backend/--transport flag combination. Returns
/// the empty string when valid, else the one-line diagnostic hadfl_run
/// prints to stderr before exiting with status 2. `has_transport` is
/// whether --transport was given explicitly (the tcp default is fine for
/// every backend; an *explicit* transport outside --backend=net is a user
/// error worth rejecting loudly).
std::string backend_flag_error(const std::string& scheme,
                               const std::string& backend,
                               bool has_transport,
                               const std::string& transport);

/// Validates the --fleet flag family: every --fleet-* flag requires
/// --fleet, value ranges must hold (devices/rounds/threads non-negative,
/// churn in [0, 1], momentum in [0, 1)), a non-zero cohort must cover
/// --np, and sampled-cohort mode supports the gaussian-quartile and top-k
/// policies only. Returns the empty string when valid, else the one-line
/// diagnostic hadfl_run prints to stderr before exiting with status 2
/// (the sync_codec_flag_error pattern).
std::string fleet_flag_error(const ArgParser& args);

/// Validates the --adaptive flag family: every --adaptive-* flag requires
/// --adaptive, --adaptive excludes --fleet (the fleet engine owns its own
/// pacing) and non-hadfl schemes, --adaptive-alpha must lie in (0, 1],
/// --adaptive-warmup must be non-negative, and --adaptive-tune only knows
/// the knobs budgets/chunks/codec. Returns the empty string when valid,
/// else the one-line diagnostic hadfl_run prints to stderr before exiting
/// with status 2 (the fleet_flag_error pattern).
std::string adaptive_flag_error(const ArgParser& args);

/// Parses a --drift spec list into speed-drift events for
/// sim::FaultSchedule::schedule_drift. Comma-separated events, each
/// DEV:ROUND:FACTOR[:KIND[:P1[:P2]]] with KIND one of
///   step            permanent slowdown from ROUND on (the default)
///   ramp            thermal-throttle ramp; P1 = rounds to reach FACTOR
///   square          background-load square wave; P1 = period, P2 = duty
/// Drift is coordinator-side budget arithmetic (like --die it is NOT
/// forwarded to net nodes). Throws InvalidArgument on a malformed spec or
/// an out-of-range device.
std::vector<sim::DriftEvent> parse_drift(const std::string& spec,
                                         std::size_t num_devices);

/// FNV-1a over the state's raw bytes — the "state hash" line hadfl_run
/// prints, which is what the CI loopback smoke compares across backends.
std::uint64_t state_hash(std::span<const float> state);

}  // namespace hadfl::exp
