#include "exp/fleet_world.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/device_table.hpp"

namespace hadfl::exp {

FleetWorld::FleetWorld(const FleetWorldConfig& config)
    : config_(config),
      scenario_(paper_scenario(nn::Architecture::kMlp, config.ratio, 1.0,
                               config.seed)) {
  HADFL_CHECK_ARG(config.devices > 0, "fleet world needs devices > 0");
  HADFL_CHECK_ARG(config.churn.fraction >= 0.0 &&
                      config.churn.fraction <= 1.0,
                  "fleet churn fraction must be in [0, 1]");

  scenario_.name =
      "fleet " + std::to_string(config.devices) + " devices, pattern " +
      sim::ratio_to_string(config.ratio);
  HADFL_CHECK_ARG(config.momentum >= 0.0 && config.momentum < 1.0,
                  "fleet momentum must be in [0, 1)");
  // Per-device velocity lives in the engine's CoW slab store
  // (core/fleet.hpp), so momentum needs no special casing here.
  scenario_.train.momentum = config.momentum;
  scenario_.jitter_std = config.jitter_std;

  split_ = data::make_synthetic_cifar(scenario_.data);

  // `epochs` counts per-device passes over a device's own shard. The
  // trainer's budget counts passes over the *global* dataset, and a fleet
  // oversubscribes that dataset (K * samples_per_device is many times its
  // size at K = 10^5), so one round of every device training would blow a
  // raw budget instantly. Scale it so the knob keeps its meaning at any K.
  const double oversubscription = std::max(
      1.0, static_cast<double>(config.devices * config.samples_per_device) /
               static_cast<double>(split_.train.size()));
  scenario_.train.total_epochs = std::max(
      config.epochs, static_cast<int>(std::lround(
                         static_cast<double>(config.epochs) *
                         oversubscription)));
  partition_ = data::cyclic_partition(split_.train.size(), config.devices,
                                      config.samples_per_device);

  const double max_power =
      *std::max_element(config.ratio.begin(), config.ratio.end());
  cluster_ = std::make_unique<sim::Cluster>(
      sim::DeviceTable::from_ratio_cycled(config.ratio, config.devices,
                                          config.jitter_std),
      scenario_.base_iteration_time * max_power, scenario_.train.seed);

  const auto churners = static_cast<std::size_t>(
      config.churn.fraction * static_cast<double>(config.devices));
  if (churners > 0) {
    Rng churn_rng(config.seed ^ 0xC0FFEEull);
    for (std::size_t i = 0; i < churners; ++i) {
      const auto id =
          static_cast<sim::DeviceId>(i * config.devices / churners);
      const sim::SimTime down =
          config.churn.start + churn_rng.uniform() * config.churn.spread;
      const bool permanent =
          churn_rng.uniform() < config.churn.permanent_fraction;
      if (permanent) {
        cluster_->faults().schedule_disconnect(id, down);
      } else {
        cluster_->faults().schedule(
            sim::FaultEvent{id, down, down + config.churn.outage});
      }
    }
  }
}

std::size_t FleetWorld::churn_events() const {
  return cluster_->faults().events().size();
}

fl::SchemeContext FleetWorld::context() {
  const nn::Architecture arch = scenario_.arch;
  const nn::ModelConfig model_cfg = scenario_.model;
  return fl::SchemeContext{
      *cluster_,
      scenario_.network,
      split_.train,
      split_.test,
      partition_,
      [arch, model_cfg](Rng& rng) {
        return nn::make_model(arch, model_cfg, rng);
      },
      scenario_.train,
      scenario_.comm_state_bytes,
  };
}

}  // namespace hadfl::exp
