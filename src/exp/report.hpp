// Table/figure emission helpers shared by the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "exp/runner.hpp"
#include "obs/span.hpp"

namespace hadfl::exp {

/// Mean and sample standard deviation of a repeated measurement.
struct Statistic {
  double mean = 0.0;
  double stddev = 0.0;

  /// "m" or "m ± s" (when more than one repetition contributed).
  std::string to_string(int decimals = 2) const;
};

/// One Table-I row group: accuracy and time-to-best per scheme for a cell,
/// averaged across repetitions.
struct Table1Cell {
  std::string cell_name;
  SchemeSummary distributed;
  SchemeSummary dfedavg;
  SchemeSummary hadfl;
  // Repetition spread (zero when a single seed ran).
  Statistic distributed_time;
  Statistic dfedavg_time;
  Statistic hadfl_time;

  double speedup_vs_distributed() const;
  double speedup_vs_dfedavg() const;
};

/// Averages repetitions of the same cell.
Table1Cell average_cells(const std::string& name,
                         const std::vector<CellResult>& reps);

/// Renders the Table-I reproduction (same layout as the paper: one column
/// group per cell, rows = schemes, entries = accuracy / time) plus the
/// speedup summary lines quoted in the abstract.
std::string render_table1(const std::vector<Table1Cell>& cells);

/// Renders a per-device wall/virtual-time breakdown of a span timeline:
/// seconds and share of the trace horizon spent per span kind (compute,
/// sync, broadcast, stall, repair), with the uncovered remainder reported
/// as idle — the paper's Fig. 1 "where does the time go" question as a
/// table, for either backend's trace.
std::string render_time_breakdown(const obs::Timeline& timeline,
                                  std::size_t num_devices);

}  // namespace hadfl::exp
