#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"
#include "nn/model_spec.hpp"
#include "sim/device.hpp"

namespace hadfl::exp {

double bench_scale_from_env() {
  const char* env = std::getenv("HADFL_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

Scenario paper_scenario(nn::Architecture arch, std::vector<double> ratio,
                        double scale, std::uint64_t seed) {
  HADFL_CHECK_ARG(scale > 0.0, "scenario scale must be positive");
  Scenario s;
  s.arch = arch;
  s.ratio = std::move(ratio);
  s.name = std::string(nn::architecture_name(arch)) + " " +
           sim::ratio_to_string(s.ratio);

  // Scaled models: 8x8x3 inputs, base width 8 (see nn/model_zoo.hpp).
  // Sized so the default bench matrix finishes in minutes on one CPU core
  // while the models still reach paper-ballpark test accuracy (~85%).
  s.model.in_channels = 3;
  s.model.image_size = 8;
  s.model.num_classes = 10;
  s.model.base_channels = 8;

  s.data.num_classes = 10;
  s.data.channels = 3;
  s.data.image_size = 8;
  s.data.max_shift = 1;
  s.data.train_samples = std::max<std::size_t>(
      256, static_cast<std::size_t>(std::lround(1024 * scale)));
  s.data.test_samples = std::max<std::size_t>(
      128, static_cast<std::size_t>(std::lround(256 * std::min(1.0, scale))));
  s.data.noise_std = 0.30;
  s.data.seed = 42;

  s.train.total_epochs = std::max(
      4, static_cast<int>(std::lround(16 * std::min(2.0, scale))));
  // The paper uses a global batch of 256 on 50K CIFAR images (196
  // iterations per device epoch). With the scaled synthetic set we keep the
  // *update frequency*, not the absolute batch: global batch 64 -> 16
  // iterations per device epoch.
  s.train.device_batch_size = 16;
  s.train.learning_rate = 0.01;
  s.train.warmup_learning_rate = 2e-3;
  s.train.warmup_epochs = 1;
  s.train.momentum = 0.9;
  s.train.seed = seed;

  s.hadfl.strategy.t_sync = 1;
  s.hadfl.strategy.select_count = 2;  // "two GPUs perform partial sync"
  s.hadfl.alpha = 0.5;
  // Unselected devices pull strongly toward the broadcast aggregate; at the
  // evaluation's sync cadence this keeps partial-sync drift small while
  // still retaining local progress (paper: "integrate the received model
  // parameters with local parameters").
  s.hadfl.broadcast_mix_weight = 0.8;

  s.base_iteration_time = 0.2;
  s.network = sim::NetworkModel::pcie3_x8();
  // Communication priced at the true model size (DESIGN.md substitution).
  s.comm_state_bytes = arch == nn::Architecture::kVgg16Lite
                           ? nn::vgg16_spec().bytes()
                           : nn::resnet18_spec().bytes();
  return s;
}

std::vector<Scenario> paper_matrix(double scale, std::uint64_t seed) {
  std::vector<Scenario> cells;
  for (const auto arch :
       {nn::Architecture::kResNet18Lite, nn::Architecture::kVgg16Lite}) {
    for (const std::vector<double>& ratio :
         {std::vector<double>{3, 3, 1, 1}, std::vector<double>{4, 2, 2, 1}}) {
      cells.push_back(paper_scenario(arch, ratio, scale, seed));
    }
  }
  return cells;
}

}  // namespace hadfl::exp
