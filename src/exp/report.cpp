#include "exp/report.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace hadfl::exp {

double Table1Cell::speedup_vs_distributed() const {
  HADFL_CHECK_MSG(hadfl.time_to_best > 0.0, "HADFL time-to-best is zero");
  return distributed.time_to_best / hadfl.time_to_best;
}

double Table1Cell::speedup_vs_dfedavg() const {
  HADFL_CHECK_MSG(hadfl.time_to_best > 0.0, "HADFL time-to-best is zero");
  return dfedavg.time_to_best / hadfl.time_to_best;
}

std::string Statistic::to_string(int decimals) const {
  if (stddev <= 0.0) return TextTable::num(mean, decimals);
  return TextTable::num(mean, decimals) + " ± " +
         TextTable::num(stddev, decimals);
}

Table1Cell average_cells(const std::string& name,
                         const std::vector<CellResult>& reps) {
  HADFL_CHECK_ARG(!reps.empty(), "no repetitions to average");
  Table1Cell cell;
  cell.cell_name = name;
  const auto n = static_cast<double>(reps.size());
  std::vector<double> d_times;
  std::vector<double> f_times;
  std::vector<double> h_times;
  for (const auto& rep : reps) {
    const SchemeSummary d = summarize(rep.distributed.metrics);
    const SchemeSummary f = summarize(rep.dfedavg.metrics);
    const SchemeSummary h = summarize(rep.hadfl.scheme.metrics);
    cell.distributed.best_accuracy += d.best_accuracy / n;
    cell.distributed.time_to_best += d.time_to_best / n;
    cell.dfedavg.best_accuracy += f.best_accuracy / n;
    cell.dfedavg.time_to_best += f.time_to_best / n;
    cell.hadfl.best_accuracy += h.best_accuracy / n;
    cell.hadfl.time_to_best += h.time_to_best / n;
    d_times.push_back(d.time_to_best);
    f_times.push_back(f.time_to_best);
    h_times.push_back(h.time_to_best);
  }
  cell.distributed_time = {mean(d_times), stddev(d_times)};
  cell.dfedavg_time = {mean(f_times), stddev(f_times)};
  cell.hadfl_time = {mean(h_times), stddev(h_times)};
  return cell;
}

std::string render_table1(const std::vector<Table1Cell>& cells) {
  std::ostringstream os;
  os << "TABLE I: TIME REQUIRED TO REACH THE MAXIMUM TEST ACCURACY\n";
  TextTable table({"scheme", "cell", "accuracy", "time [s]",
                   "HADFL speedup"});
  for (const auto& cell : cells) {
    table.add_row({"Distributed training", cell.cell_name,
                   TextTable::num(100.0 * cell.distributed.best_accuracy, 1) + "%",
                   cell.distributed_time.to_string(),
                   TextTable::num(cell.speedup_vs_distributed()) + "x"});
    table.add_row({"Decentralized-FedAvg", cell.cell_name,
                   TextTable::num(100.0 * cell.dfedavg.best_accuracy, 1) + "%",
                   cell.dfedavg_time.to_string(),
                   TextTable::num(cell.speedup_vs_dfedavg()) + "x"});
    table.add_row({"HADFL", cell.cell_name,
                   TextTable::num(100.0 * cell.hadfl.best_accuracy, 1) + "%",
                   cell.hadfl_time.to_string(), "1.00x"});
  }
  os << table.render();

  double max_vs_distributed = 0.0;
  double max_vs_dfedavg = 0.0;
  for (const auto& cell : cells) {
    max_vs_distributed =
        std::max(max_vs_distributed, cell.speedup_vs_distributed());
    max_vs_dfedavg = std::max(max_vs_dfedavg, cell.speedup_vs_dfedavg());
  }
  os << "\nMaximum speedup: " << TextTable::num(max_vs_dfedavg)
     << "x vs decentralized-FedAvg, " << TextTable::num(max_vs_distributed)
     << "x vs distributed training\n"
     << "(paper: 3.15x and 4.68x)\n";
  return os.str();
}

std::string render_time_breakdown(const obs::Timeline& timeline,
                                  std::size_t num_devices) {
  const double horizon = timeline.end_time();
  TextTable table({"device", "compute [s]", "sync [s]", "broadcast [s]",
                   "stall [s]", "repair [s]", "busy %"});
  for (std::size_t d = 0; d < num_devices; ++d) {
    double by_kind[6] = {};
    double busy = 0.0;
    for (const obs::Span& s : timeline.spans_for(d)) {
      const double len = s.end - s.start;
      by_kind[static_cast<std::size_t>(s.kind)] += len;
      if (s.kind != obs::SpanKind::kIdle) busy += len;
    }
    const auto seconds = [&](obs::SpanKind kind) {
      return TextTable::num(by_kind[static_cast<std::size_t>(kind)], 3);
    };
    table.add_row({"dev" + std::to_string(d),
                   seconds(obs::SpanKind::kCompute),
                   seconds(obs::SpanKind::kSync),
                   seconds(obs::SpanKind::kBroadcast),
                   seconds(obs::SpanKind::kStall),
                   seconds(obs::SpanKind::kRepair),
                   horizon > 0.0
                       ? TextTable::num(100.0 * busy / horizon, 1)
                       : TextTable::num(0.0, 1)});
  }
  return table.render();
}

}  // namespace hadfl::exp
