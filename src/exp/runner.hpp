// Experiment runner: materializes a Scenario (dataset, partition, cluster)
// and executes the training schemes against identical conditions.
#pragma once

#include <optional>

#include "baselines/central_fedavg.hpp"
#include "baselines/decentralized_fedavg.hpp"
#include "baselines/distributed.hpp"
#include "core/trainer.hpp"
#include "exp/scenario.hpp"

namespace hadfl::exp {

/// The materialized environment for one scenario (shared across schemes so
/// every scheme sees the same data, partition, and device specs).
class Environment {
 public:
  explicit Environment(const Scenario& scenario);

  const Scenario& scenario() const { return scenario_; }
  sim::Cluster& cluster() { return *cluster_; }
  const data::Dataset& train() const { return split_.train; }
  const data::Dataset& test() const { return split_.test; }
  const data::Partition& partition() const { return partition_; }

  /// Builds the scheme context bound to this environment.
  fl::SchemeContext context(std::uint64_t seed_override = 0);

  /// Applies per-device link-speed scales (§VI future work).
  void set_bandwidth_scales(const std::vector<double>& scales) {
    cluster_->set_bandwidth_scales(scales);
  }

 private:
  Scenario scenario_;
  data::TrainTestSplit split_;
  data::Partition partition_;
  std::unique_ptr<sim::Cluster> cluster_;
};

/// Results of the three paper schemes on one cell.
struct CellResult {
  fl::SchemeResult distributed;
  fl::SchemeResult dfedavg;
  core::HadflResult hadfl;
};

/// Runs distributed training, decentralized-FedAvg and HADFL on one
/// environment. With `seeds > 1`, runs are repeated with different training
/// seeds and the *time/accuracy series of each run are kept* (the caller
/// averages what it needs — Table I averages time-to-best-accuracy).
CellResult run_cell(Environment& env, std::uint64_t seed_override = 0);

/// Paper Table I summary for one scheme's metrics.
struct SchemeSummary {
  double best_accuracy = 0.0;
  sim::SimTime time_to_best = 0.0;
};

SchemeSummary summarize(const fl::MetricsRecorder& metrics);

}  // namespace hadfl::exp
