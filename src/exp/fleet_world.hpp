// Fleet-scale experiment world: the one construction path for 10^4–10^6
// device scenarios, shared by `hadfl_run --fleet` and bench/fleet_scale so
// both see the identical cluster, partition, and churn plan for a given
// (devices, seed) pair.
//
// A fleet world deliberately does NOT reuse exp::Environment: at K = 10^5
// the per-device spec vector, the shuffled IID partition, and a
// dataset-per-device split are exactly the O(K) costs the fleet stack
// removes. Instead the world cycles a compute-ratio pattern through a
// struct-of-arrays DeviceTable, oversubscribes a fixed synthetic dataset
// with the deterministic cyclic partition, and schedules a staggered churn
// plan (one fault interval per churning device, a slice of them permanent).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/partition.hpp"
#include "exp/scenario.hpp"
#include "fl/scheme.hpp"

namespace hadfl::exp {

/// Deterministic churn plan: `fraction` of the fleet disconnects once,
/// outage starts staggered across [start, start + spread), and
/// `permanent_fraction` of the churners never come back. Churner ids are
/// evenly strided over 0..K-1; start times and permanence draw from
/// Rng(seed ^ 0xC0FFEE), one (uniform, uniform) pair per churner in id
/// order, so the plan is a pure function of (devices, seed, this struct).
struct FleetChurnConfig {
  double fraction = 0.0;            ///< of the fleet; 0 = no churn
  double permanent_fraction = 0.25; ///< of the churners
  double start = 2.0;               ///< virtual s of the earliest outage
  double spread = 200.0;            ///< stagger window, virtual s
  double outage = 30.0;             ///< transient down interval, virtual s
};

struct FleetWorldConfig {
  std::size_t devices = 1000;              ///< K
  std::vector<double> ratio{3, 3, 1, 1};   ///< compute pattern, cycled
  double jitter_std = 0.0;                 ///< per-burst compute noise
  double momentum = 0.0;                   ///< SGD momentum, in [0, 1)
  std::size_t samples_per_device = 64;     ///< cyclic oversubscription
  int epochs = 4;                          ///< total training epochs
  std::uint64_t seed = 7;
  FleetChurnConfig churn;
};

/// The materialized fleet scenario: synthetic dataset, cyclic partition,
/// SoA cluster with the churn plan installed. Owns everything a
/// SchemeContext references, so it must outlive every context() call.
class FleetWorld {
 public:
  explicit FleetWorld(const FleetWorldConfig& config);

  const FleetWorldConfig& config() const { return config_; }
  Scenario& scenario() { return scenario_; }
  const Scenario& scenario() const { return scenario_; }
  sim::Cluster& cluster() { return *cluster_; }
  std::size_t devices() const { return config_.devices; }

  /// Scheduled churn events (size 0 when churn.fraction == 0).
  std::size_t churn_events() const;

  /// A context viewing this world's cluster, dataset, and partition.
  fl::SchemeContext context();

 private:
  FleetWorldConfig config_;
  Scenario scenario_;
  data::TrainTestSplit split_;
  data::Partition partition_;
  std::unique_ptr<sim::Cluster> cluster_;
};

}  // namespace hadfl::exp
