// Experiment scenarios: everything needed to run one (model x heterogeneity)
// cell of the paper's evaluation, at a configurable scale.
//
// The paper's setup (§IV-A): 4 GPUs, PCIe 3.0 x8, ResNet-18 / VGG-16 on
// CIFAR-10, global batch 256 (64 per device), lr 0.01 (small warm-up lr),
// heterogeneity ratios [3,3,1,1] and [4,2,2,1], N_p = 2 devices per partial
// synchronization, 3 repetitions.
//
// Substitutions (DESIGN.md): scaled models + synthetic 10-class images for
// the compute path; full-size ResNet-18 / VGG-16 byte counts for the
// communication path; virtual time throughout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "fl/config.hpp"
#include "nn/model_zoo.hpp"
#include "sim/network.hpp"

namespace hadfl::exp {

struct Scenario {
  std::string name;
  nn::Architecture arch = nn::Architecture::kResNet18Lite;
  nn::ModelConfig model;
  std::vector<double> ratio{3, 3, 1, 1};   ///< compute-power ratio
  data::SyntheticConfig data;
  fl::TrainConfig train;
  core::HadflConfig hadfl;
  int dfedavg_local_epochs = 1;

  double base_iteration_time = 0.2;  ///< virtual s/iteration on a power-1 dev
  double jitter_std = 0.0;           ///< per-burst compute disturbance
  sim::NetworkModel network = sim::NetworkModel::pcie3_x8();
  std::size_t comm_state_bytes = 0;  ///< wire size; 0 = actual model bytes

  std::size_t num_devices() const { return ratio.size(); }
};

/// Scale knob for benches: multiplies sample counts and epoch budgets.
/// Resolution order: explicit argument > HADFL_BENCH_SCALE env var > 1.0.
double bench_scale_from_env();

/// One cell of the paper's evaluation matrix. `scale` in (0, ...]: 1.0 is
/// the default bench size (a few thousand synthetic samples, ~16 epochs).
Scenario paper_scenario(nn::Architecture arch, std::vector<double> ratio,
                        double scale = 1.0, std::uint64_t seed = 7);

/// The four cells of Table I / Fig. 3.
std::vector<Scenario> paper_matrix(double scale = 1.0, std::uint64_t seed = 7);

}  // namespace hadfl::exp
