#include "exp/cli_setup.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "core/trainer.hpp"
#include "sim/network.hpp"

namespace hadfl::exp {

nn::Architecture parse_model(const std::string& name) {
  if (name == "mlp") return nn::Architecture::kMlp;
  if (name == "resnet18") return nn::Architecture::kResNet18Lite;
  if (name == "vgg16") return nn::Architecture::kVgg16Lite;
  throw InvalidArgument("unknown --model: " + name);
}

data::Partition parse_partition(const std::string& spec,
                                const data::Dataset& train,
                                std::size_t devices, Rng& rng) {
  if (spec == "iid") return data::partition_iid(train, devices, rng);
  if (spec.rfind("dirichlet:", 0) == 0) {
    const double alpha = std::atof(spec.c_str() + 10);
    return data::partition_dirichlet(train, devices, alpha, rng);
  }
  if (spec.rfind("shards:", 0) == 0) {
    const int shards = std::atoi(spec.c_str() + 7);
    return data::partition_shards(train, devices,
                                  static_cast<std::size_t>(shards), rng);
  }
  throw InvalidArgument("unknown --partition: " + spec);
}

core::SyncCompression parse_sync_codec(const std::string& name) {
  if (name == "none") return core::SyncCompression::kNone;
  if (name == "int8") return core::SyncCompression::kInt8;
  if (name == "topk") return core::SyncCompression::kTopK;
  throw InvalidArgument("unknown --sync-codec: " + name);
}

std::string sync_codec_arg(const ArgParser& args) {
  // --int8-broadcast predates --sync-codec and survives as an alias; an
  // explicit --sync-codec wins.
  if (args.has("sync-codec")) return args.get("sync-codec", "none");
  return args.has("int8-broadcast") ? "int8" : "none";
}

std::string sync_codec_flag_error(const std::string& codec,
                                  double topk_ratio) {
  if (codec != "none" && codec != "int8" && codec != "topk") {
    return "unknown --sync-codec: " + codec + " (want none, int8, or topk)";
  }
  if (!(topk_ratio > 0.0) || topk_ratio > 1.0) {
    return "--topk-ratio out of range (want 0 < ratio <= 1): " +
           std::to_string(topk_ratio);
  }
  return "";
}

std::string fleet_flag_error(const ArgParser& args) {
  static const std::vector<std::string> kFleetFlags{
      "fleet-devices", "fleet-cohort", "fleet-rounds",
      "fleet-churn",   "fleet-threads", "fleet-momentum"};
  if (!args.has("fleet")) {
    for (const std::string& flag : kFleetFlags) {
      if (args.has(flag)) {
        return "--" + flag + " requires --fleet";
      }
    }
    return "";
  }
  const int devices = args.get_int("fleet-devices", 1000);
  if (devices <= 0) {
    return "--fleet-devices must be positive: " + std::to_string(devices);
  }
  const int cohort = args.get_int("fleet-cohort", 0);
  if (cohort < 0) {
    return "--fleet-cohort must be non-negative: " + std::to_string(cohort);
  }
  const int rounds = args.get_int("fleet-rounds", 0);
  if (rounds < 0) {
    return "--fleet-rounds must be non-negative: " + std::to_string(rounds);
  }
  const int threads = args.get_int("fleet-threads", 0);
  if (threads < 0) {
    return "--fleet-threads must be non-negative: " + std::to_string(threads);
  }
  const double churn = args.get_double("fleet-churn", 0.0);
  if (churn < 0.0 || churn > 1.0) {
    return "--fleet-churn out of range (want 0 <= f <= 1): " +
           std::to_string(churn);
  }
  const double momentum = args.get_double("fleet-momentum", 0.0);
  if (momentum < 0.0 || momentum >= 1.0) {
    return "--fleet-momentum out of range (want 0 <= mu < 1): " +
           std::to_string(momentum);
  }
  const int np = args.get_int("np", 2);
  const bool sampled = cohort > 0 && cohort < devices;
  if (sampled && cohort < np) {
    return "--fleet-cohort=" + std::to_string(cohort) +
           " smaller than --np=" + std::to_string(np);
  }
  const std::string policy = args.get("policy", "gaussian-quartile");
  if (sampled && policy != "gaussian-quartile" && policy != "top-k") {
    return "--fleet-cohort supports --policy=gaussian-quartile|top-k; got " +
           policy;
  }
  return "";
}

std::string adaptive_flag_error(const ArgParser& args) {
  static const std::vector<std::string> kAdaptiveFlags{
      "adaptive-alpha", "adaptive-warmup", "adaptive-tune"};
  if (!args.has("adaptive")) {
    for (const std::string& flag : kAdaptiveFlags) {
      if (args.has(flag)) {
        return "--" + flag + " requires --adaptive";
      }
    }
    return "";
  }
  if (args.has("fleet")) {
    return "--adaptive does not apply to --fleet (the fleet engine owns "
           "its own pacing)";
  }
  if (args.get("scheme", "hadfl") != "hadfl") {
    return "--adaptive only applies to --scheme=hadfl";
  }
  const double alpha = args.get_double("adaptive-alpha", 0.4);
  if (!(alpha > 0.0) || alpha > 1.0) {
    return "--adaptive-alpha out of range (want 0 < alpha <= 1): " +
           std::to_string(alpha);
  }
  const int warmup = args.get_int("adaptive-warmup", 2);
  if (warmup < 0) {
    return "--adaptive-warmup must be non-negative: " +
           std::to_string(warmup);
  }
  for (const std::string& knob :
       split_csv_list(args.get("adaptive-tune", "budgets,chunks,codec"))) {
    if (knob != "budgets" && knob != "chunks" && knob != "codec") {
      return "unknown --adaptive-tune knob: " + knob +
             " (want budgets, chunks, codec)";
    }
  }
  return "";
}

std::vector<sim::DriftEvent> parse_drift(const std::string& spec,
                                         std::size_t num_devices) {
  std::vector<sim::DriftEvent> events;
  if (spec.empty()) return events;
  for (const std::string& piece : split_csv_list(spec)) {
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= piece.size()) {
      const std::size_t colon = piece.find(':', start);
      if (colon == std::string::npos) {
        fields.push_back(piece.substr(start));
        break;
      }
      fields.push_back(piece.substr(start, colon - start));
      start = colon + 1;
    }
    const std::string want =
        " (want DEV:ROUND:FACTOR[:step|ramp:R|square:P:D])";
    if (fields.size() < 3) {
      throw InvalidArgument("bad --drift spec: " + piece + want);
    }
    sim::DriftEvent event;
    event.device = static_cast<std::size_t>(std::atol(fields[0].c_str()));
    event.from_round = static_cast<std::size_t>(std::atol(fields[1].c_str()));
    event.factor = std::atof(fields[2].c_str());
    if (event.device >= num_devices) {
      throw InvalidArgument("--drift device out of range: " + piece);
    }
    if (!(event.factor > 0.0)) {
      throw InvalidArgument("--drift factor must be positive: " + piece);
    }
    const std::string kind = fields.size() > 3 ? fields[3] : "step";
    if (kind == "step") {
      if (fields.size() > 4) {
        throw InvalidArgument("bad --drift spec: " + piece + want);
      }
      event.kind = sim::DriftKind::kStep;
    } else if (kind == "ramp") {
      if (fields.size() != 5) {
        throw InvalidArgument("--drift ramp needs a round count: " + piece +
                              want);
      }
      event.kind = sim::DriftKind::kRamp;
      event.ramp_rounds =
          static_cast<std::size_t>(std::atol(fields[4].c_str()));
      if (event.ramp_rounds == 0) {
        throw InvalidArgument("--drift ramp rounds must be positive: " +
                              piece);
      }
    } else if (kind == "square") {
      if (fields.size() != 6) {
        throw InvalidArgument("--drift square needs period and duty: " +
                              piece + want);
      }
      event.kind = sim::DriftKind::kSquare;
      event.period = static_cast<std::size_t>(std::atol(fields[4].c_str()));
      event.duty = static_cast<std::size_t>(std::atol(fields[5].c_str()));
      if (event.period == 0 || event.duty == 0 ||
          event.duty > event.period) {
        throw InvalidArgument(
            "--drift square wants 0 < duty <= period: " + piece);
      }
    } else {
      throw InvalidArgument("unknown --drift kind: " + kind + want);
    }
    events.push_back(event);
  }
  return events;
}

fl::SchemeContext RunSetup::context() const {
  const fl::SchemeContext base = env->context();
  return fl::SchemeContext{base.cluster, base.network,  base.train,
                           base.test,    partition,     base.make_model,
                           base.config,  base.comm_state_bytes};
}

RunSetup make_run_setup(const ArgParser& args) {
  RunSetup setup;
  setup.scenario = paper_scenario(
      parse_model(args.get("model", "mlp")),
      args.get_double_list("ratio", {3, 3, 1, 1}),
      args.get_double("scale", 1.0),
      static_cast<std::uint64_t>(args.get_int("seed", 7)));
  Scenario& s = setup.scenario;
  s.train.total_epochs = args.get_int("epochs", 16);
  s.jitter_std = args.get_double("jitter", 0.0);
  s.hadfl.strategy.select_count =
      static_cast<std::size_t>(args.get_int("np", 2));
  s.hadfl.strategy.t_sync = args.get_int("tsync", 1);
  s.hadfl.broadcast_mix_weight = args.get_double("mix", 0.8);
  s.hadfl.policy =
      core::make_selection_policy(args.get("policy", "gaussian-quartile"));
  const int group_size = args.get_int("group-size", 0);
  if (group_size > 0) {
    s.hadfl.grouping.group_size = static_cast<std::size_t>(group_size);
  }
  if (args.get("network", "pcie") == "wan") {
    s.network = sim::NetworkModel::wan();
  }
  // Codec knobs live on the hadfl config so the sim, rt, and net backends
  // all encode the same chunks from the same settings.
  s.hadfl.compression = parse_sync_codec(sync_codec_arg(args));
  s.hadfl.top_k_ratio = args.get_double("topk-ratio", s.hadfl.top_k_ratio);
  s.hadfl.sync_chunks =
      static_cast<std::size_t>(args.get_int("sync-chunks", 0));
  // Adaptive-control knobs (src/ctrl). Off by default; with the flag off
  // no controller is built and every backend runs bit-identical to the
  // static path. The --sync-codec/--sync-chunks values above become the
  // controller's round-0 seed when it is on.
  s.hadfl.adaptive.enabled = args.has("adaptive");
  if (s.hadfl.adaptive.enabled) {
    ctrl::AdaptiveConfig& a = s.hadfl.adaptive;
    a.step_time_alpha = args.get_double("adaptive-alpha", a.step_time_alpha);
    a.warmup_rounds = static_cast<std::size_t>(args.get_int(
        "adaptive-warmup", static_cast<int>(a.warmup_rounds)));
    const std::vector<std::string> knobs =
        split_csv_list(args.get("adaptive-tune", "budgets,chunks,codec"));
    a.tune_budgets = a.tune_chunks = a.tune_codec = false;
    for (const std::string& knob : knobs) {
      if (knob == "budgets") a.tune_budgets = true;
      if (knob == "chunks") a.tune_chunks = true;
      if (knob == "codec") a.tune_codec = true;
    }
  }

  setup.env = std::make_unique<Environment>(s);
  // The partition stream is pinned: Rng(seed ^ 0x5151), drawn exactly once.
  Rng part_rng(s.train.seed ^ 0x5151u);
  setup.partition =
      parse_partition(args.get("partition", "iid"), setup.env->train(),
                      s.num_devices(), part_rng);
  return setup;
}

rt::RtConfig make_rt_config(const ArgParser& args, const Scenario& scenario) {
  rt::RtConfig config;
  config.hadfl = scenario.hadfl;
  config.timing = args.has("wallclock") ? rt::TimingMode::kWallclock
                                        : rt::TimingMode::kVirtual;
  config.time_scale = args.get_double("time-scale", 0.0);
  config.compute_throttle = args.get_double("throttle", 0.0);
  // --sync-chunks lands on hadfl.sync_chunks (make_run_setup); RtConfig's
  // own sync_chunks stays 0 so the coordinator takes the shared grid.
  const std::string die = args.get("die", "");
  if (!die.empty()) {
    rt::FaultPlan plan;
    if (std::sscanf(die.c_str(), "%zu:%zu:%zu", &plan.device, &plan.round,
                    &plan.after_steps) != 3) {
      throw InvalidArgument("bad --die spec (want DEV:ROUND:STEP): " + die);
    }
    if (plan.device >= scenario.num_devices()) {
      throw InvalidArgument("--die device out of range: " + die);
    }
    config.faults.push_back(plan);
  }
  return config;
}

std::vector<std::string> scenario_forward_args(const ArgParser& args) {
  // Value flags a node needs verbatim; --die and --drift are intentionally
  // absent — fault/drift injection is coordinator-side state (deaths reach
  // workers via Command::die_after; drift only alters budget arithmetic).
  static const char* const kValueKeys[] = {
      "model", "ratio",     "epochs",  "scale",  "seed",
      "np",    "tsync",     "policy",  "mix",    "group-size",
      "partition", "network", "jitter", "throttle", "sync-chunks",
      "sync-codec", "topk-ratio",
      "adaptive-alpha", "adaptive-warmup", "adaptive-tune"};
  static const char* const kFlagKeys[] = {"wallclock", "int8-broadcast",
                                          "adaptive"};
  std::vector<std::string> out;
  for (const char* key : kValueKeys) {
    if (args.has(key)) out.push_back("--" + std::string(key) + "=" +
                                     args.get(key));
  }
  for (const char* key : kFlagKeys) {
    if (args.has(key)) out.push_back("--" + std::string(key));
  }
  return out;
}

std::string backend_flag_error(const std::string& scheme,
                               const std::string& backend,
                               bool has_transport,
                               const std::string& transport) {
  if (backend != "sim" && backend != "rt" && backend != "net") {
    return "unknown --backend: " + backend + " (want sim, rt, or net)";
  }
  if (transport != "tcp" && transport != "uds") {
    return "unknown --transport: " + transport + " (want tcp or uds)";
  }
  if (has_transport && backend != "net") {
    return "--transport requires --backend=net";
  }
  if (backend != "sim" && scheme != "hadfl") {
    return "--backend=" + backend + " only applies to --scheme=hadfl";
  }
  return "";
}

std::uint64_t state_hash(std::span<const float> state) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (float x : state) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (bits >> shift) & 0xffu;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  }
  return h;
}

}  // namespace hadfl::exp
