#include "exp/runner.hpp"
#include <algorithm>


#include "common/error.hpp"

namespace hadfl::exp {

Environment::Environment(const Scenario& scenario)
    : scenario_(scenario), split_(data::make_synthetic_cifar(scenario.data)) {
  Rng rng(scenario.data.seed ^ 0xA5A5A5A5ull);
  partition_ =
      data::partition_iid(split_.train, scenario.num_devices(), rng);
  // The paper's power ratios are anchored at the fastest device (a real
  // V100; slower devices are sleep()-emulated fractions of it), so the
  // scenario's base_iteration_time describes the *fastest* device and a
  // power-p device takes (max_power / p) times that.
  const double max_power =
      *std::max_element(scenario.ratio.begin(), scenario.ratio.end());
  cluster_ = std::make_unique<sim::Cluster>(
      sim::devices_from_ratio(scenario.ratio, scenario.jitter_std),
      scenario.base_iteration_time * max_power, scenario.train.seed);
}

fl::SchemeContext Environment::context(std::uint64_t seed_override) {
  fl::TrainConfig train = scenario_.train;
  if (seed_override != 0) train.seed = seed_override;
  const nn::Architecture arch = scenario_.arch;
  const nn::ModelConfig model_cfg = scenario_.model;
  return fl::SchemeContext{
      *cluster_,
      scenario_.network,
      split_.train,
      split_.test,
      partition_,
      [arch, model_cfg](Rng& rng) {
        return nn::make_model(arch, model_cfg, rng);
      },
      train,
      scenario_.comm_state_bytes,
  };
}

CellResult run_cell(Environment& env, std::uint64_t seed_override) {
  CellResult result;
  {
    fl::SchemeContext ctx = env.context(seed_override);
    result.distributed = baselines::run_distributed(ctx);
  }
  {
    fl::SchemeContext ctx = env.context(seed_override);
    baselines::DecentralizedFedAvgConfig cfg;
    cfg.local_epochs_per_round = env.scenario().dfedavg_local_epochs;
    result.dfedavg = baselines::run_decentralized_fedavg(ctx, cfg);
  }
  {
    fl::SchemeContext ctx = env.context(seed_override);
    result.hadfl = core::run_hadfl(ctx, env.scenario().hadfl);
  }
  return result;
}

SchemeSummary summarize(const fl::MetricsRecorder& metrics) {
  HADFL_CHECK_MSG(!metrics.empty(), "summarize of empty metrics");
  return SchemeSummary{metrics.best_accuracy(),
                       metrics.time_to_best_accuracy()};
}

}  // namespace hadfl::exp
