#include "sim/trace.hpp"

#include <algorithm>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace hadfl::sim {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kSync: return "sync";
    case SpanKind::kIdle: return "idle";
    case SpanKind::kBroadcast: return "broadcast";
    case SpanKind::kStall: return "stall";
  }
  return "?";
}

void TraceRecorder::record(DeviceId device, SimTime start, SimTime end,
                           SpanKind kind, std::string label) {
  HADFL_CHECK_ARG(end >= start, "span ends before it starts");
  spans_.push_back(Span{device, start, end, kind, std::move(label)});
}

std::vector<Span> TraceRecorder::spans_for(DeviceId device) const {
  std::vector<Span> out;
  for (const auto& s : spans_) {
    if (s.device == device) out.push_back(s);
  }
  return out;
}

SimTime TraceRecorder::end_time() const {
  SimTime t = 0.0;
  for (const auto& s : spans_) t = std::max(t, s.end);
  return t;
}

std::string TraceRecorder::render_timeline(std::size_t num_devices,
                                           std::size_t columns) const {
  HADFL_CHECK_ARG(columns > 0, "timeline needs at least one column");
  const SimTime horizon = end_time();
  std::string out;
  for (std::size_t d = 0; d < num_devices; ++d) {
    std::string row(columns, '.');
    for (const auto& s : spans_) {
      if (s.device != d || horizon <= 0.0) continue;
      auto col = [&](SimTime t) {
        return std::min<std::size_t>(
            columns - 1,
            static_cast<std::size_t>(t / horizon *
                                     static_cast<double>(columns)));
      };
      char c = '#';
      switch (s.kind) {
        case SpanKind::kCompute: c = '#'; break;
        case SpanKind::kSync: c = 'S'; break;
        case SpanKind::kBroadcast: c = 'B'; break;
        case SpanKind::kIdle: c = '.'; break;
        case SpanKind::kStall: c = 'x'; break;
      }
      for (std::size_t col_i = col(s.start); col_i <= col(s.end - 1e-12) &&
                                             col_i < columns;
           ++col_i) {
        row[col_i] = c;
      }
    }
    out += "dev" + std::to_string(d) + " |" + row + "|\n";
  }
  return out;
}

void TraceRecorder::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"device", "start", "end", "kind", "label"});
  for (const auto& s : spans_) {
    csv.row(std::vector<std::string>{
        std::to_string(s.device), std::to_string(s.start),
        std::to_string(s.end), span_kind_name(s.kind), s.label});
  }
}

}  // namespace hadfl::sim
