// Virtual time.
//
// The testbed is simulated: all reported durations are virtual seconds
// advanced by compute/communication cost models, never wall-clock time.
// The paper itself emulates heterogeneity with sleep(), so its timings are
// equally synthetic; see DESIGN.md.
#pragma once

namespace hadfl::sim {

using SimTime = double;  ///< virtual seconds

}  // namespace hadfl::sim
