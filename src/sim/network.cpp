#include "sim/network.hpp"

#include "common/error.hpp"

namespace hadfl::sim {

SimTime NetworkModel::transfer_time(std::size_t bytes) const {
  HADFL_CHECK_ARG(latency >= 0.0, "network latency must be non-negative");
  HADFL_CHECK_ARG(bandwidth > 0.0, "network bandwidth must be positive");
  return latency + static_cast<double>(bytes) / bandwidth;
}

NetworkModel NetworkModel::pcie3_x8() { return NetworkModel{5e-6, 7.88e9}; }

NetworkModel NetworkModel::wan() { return NetworkModel{20e-3, 12.5e6}; }

}  // namespace hadfl::sim
