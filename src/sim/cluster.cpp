#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hadfl::sim {

Cluster::Cluster(DeviceTable devices, double base_iteration_time,
                 std::uint64_t seed)
    : table_(std::move(devices)),
      clocks_(table_.size(), 0.0),
      base_iteration_time_(base_iteration_time),
      seed_(seed) {
  HADFL_CHECK_ARG(!table_.empty(), "cluster needs at least one device");
  HADFL_CHECK_ARG(base_iteration_time > 0.0,
                  "base iteration time must be positive");
  if (table_.any_jitter()) {
    // Allocate the dense stream array up front so lazy seeding inside
    // parallel device-range loops never resizes shared storage.
    jitter_streams_.assign(table_.size(), Rng(0));
    jitter_seeded_.assign(table_.size(), 0);
  }
}

Cluster::Cluster(std::vector<DeviceSpec> devices, double base_iteration_time,
                 std::uint64_t seed)
    : Cluster(DeviceTable::from_specs(devices), base_iteration_time, seed) {}

DeviceSpec Cluster::device(DeviceId id) const {
  HADFL_CHECK_ARG(id < table_.size(), "device id " << id << " out of range");
  return table_.spec(id);
}

double Cluster::compute_power(DeviceId id) const {
  HADFL_CHECK_ARG(id < table_.size(), "device id " << id << " out of range");
  return table_.compute_power(id);
}

double Cluster::bandwidth_scale(DeviceId id) const {
  HADFL_CHECK_ARG(id < table_.size(), "device id " << id << " out of range");
  return table_.bandwidth_scale(id);
}

double Cluster::jitter_std(DeviceId id) const {
  HADFL_CHECK_ARG(id < table_.size(), "device id " << id << " out of range");
  return table_.jitter_std(id);
}

SimTime Cluster::iteration_time(DeviceId id) const {
  return base_iteration_time_ / compute_power(id);
}

SimTime Cluster::time(DeviceId id) const {
  HADFL_CHECK_ARG(id < clocks_.size(), "device id " << id << " out of range");
  return clocks_[id];
}

Rng& Cluster::jitter_stream(DeviceId id) {
  if (!jitter_seeded_[id]) {
    // Counter-style derivation: the stream depends on (cluster seed, id)
    // only, never on how many draws other devices have made — so reordering
    // or skipping other devices' draws (the sampled-cohort fleet path) leaves
    // this device's jitter sequence intact.
    const std::uint64_t stream_seed =
        seed_ ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(id) + 1));
    jitter_streams_[id] = Rng(stream_seed);
    jitter_seeded_[id] = 1;
  }
  return jitter_streams_[id];
}

double Cluster::sample_jitter_factor(DeviceId id) {
  const double jstd = jitter_std(id);
  if (jstd <= 0.0) return 1.0;
  // Multiplicative noise, clamped so time never goes backwards and a
  // disturbed burst is at most ~4 sigma slower.
  return std::clamp(1.0 + jitter_stream(id).normal(0.0, jstd), 0.25,
                    1.0 + 4.0 * jstd);
}

SimTime Cluster::advance_compute_unsynced(DeviceId id,
                                          std::size_t iterations) {
  SimTime duration = iteration_time(id) * static_cast<double>(iterations);
  if (iterations > 0) duration *= sample_jitter_factor(id);
  clocks_[id] += duration;
  return duration;
}

SimTime Cluster::advance_compute(DeviceId id, std::size_t iterations) {
  const SimTime duration = advance_compute_unsynced(id, iterations);
  max_clock_ = std::max(max_clock_, clocks_[id]);
  return duration;
}

void Cluster::advance_unsynced(DeviceId id, SimTime duration) {
  HADFL_CHECK_ARG(duration >= 0.0, "cannot advance by negative time");
  HADFL_CHECK_ARG(id < clocks_.size(), "device id " << id << " out of range");
  clocks_[id] += duration;
}

void Cluster::advance(DeviceId id, SimTime duration) {
  advance_unsynced(id, duration);
  max_clock_ = std::max(max_clock_, clocks_[id]);
}

void Cluster::advance_to_unsynced(DeviceId id, SimTime t) {
  HADFL_CHECK_ARG(id < clocks_.size(), "device id " << id << " out of range");
  if (t > clocks_[id]) clocks_[id] = t;
}

void Cluster::advance_to(DeviceId id, SimTime t) {
  advance_to_unsynced(id, t);
  max_clock_ = std::max(max_clock_, clocks_[id]);
}

SimTime Cluster::barrier(const std::vector<DeviceId>& ids) {
  HADFL_CHECK_ARG(!ids.empty(), "barrier over empty device set");
  SimTime t = 0.0;
  for (DeviceId id : ids) t = std::max(t, time(id));
  for (DeviceId id : ids) clocks_[id] = t;
  max_clock_ = std::max(max_clock_, t);
  return t;
}

SimTime Cluster::barrier_all() {
  std::fill(clocks_.begin(), clocks_.end(), max_clock_);
  return max_clock_;
}

bool Cluster::alive_now(DeviceId id) const {
  return faults_.alive(id, time(id));
}

void Cluster::reset_clocks() {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  max_clock_ = 0.0;
}

void Cluster::set_bandwidth_scales(const std::vector<double>& scales) {
  HADFL_CHECK_ARG(scales.size() == table_.size(),
                  "bandwidth scales count mismatch: " << scales.size()
                      << " for " << table_.size() << " devices");
  for (std::size_t i = 0; i < scales.size(); ++i) {
    table_.set_bandwidth_scale(i, scales[i]);
  }
}

}  // namespace hadfl::sim
