#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hadfl::sim {

Cluster::Cluster(std::vector<DeviceSpec> devices, double base_iteration_time,
                 std::uint64_t seed)
    : devices_(std::move(devices)),
      clocks_(devices_.size(), 0.0),
      base_iteration_time_(base_iteration_time),
      rng_(seed) {
  HADFL_CHECK_ARG(!devices_.empty(), "cluster needs at least one device");
  HADFL_CHECK_ARG(base_iteration_time > 0.0,
                  "base iteration time must be positive");
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    HADFL_CHECK_ARG(devices_[i].id == i,
                    "device ids must be dense 0..K-1; device " << i
                        << " has id " << devices_[i].id);
    HADFL_CHECK_ARG(devices_[i].compute_power > 0.0,
                    "compute power must be positive");
  }
}

const DeviceSpec& Cluster::device(DeviceId id) const {
  HADFL_CHECK_ARG(id < devices_.size(), "device id " << id << " out of range");
  return devices_[id];
}

SimTime Cluster::iteration_time(DeviceId id) const {
  return base_iteration_time_ / device(id).compute_power;
}

SimTime Cluster::time(DeviceId id) const {
  HADFL_CHECK_ARG(id < clocks_.size(), "device id " << id << " out of range");
  return clocks_[id];
}

SimTime Cluster::max_time() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

double Cluster::sample_jitter_factor(DeviceId id) {
  const DeviceSpec& spec = device(id);
  if (spec.jitter_std <= 0.0) return 1.0;
  // Multiplicative noise, clamped so time never goes backwards and a
  // disturbed burst is at most ~4 sigma slower.
  return std::clamp(1.0 + rng_.normal(0.0, spec.jitter_std), 0.25,
                    1.0 + 4.0 * spec.jitter_std);
}

SimTime Cluster::advance_compute(DeviceId id, std::size_t iterations) {
  SimTime duration = iteration_time(id) * static_cast<double>(iterations);
  if (iterations > 0) duration *= sample_jitter_factor(id);
  clocks_[id] += duration;
  return duration;
}

void Cluster::advance(DeviceId id, SimTime duration) {
  HADFL_CHECK_ARG(duration >= 0.0, "cannot advance by negative time");
  HADFL_CHECK_ARG(id < clocks_.size(), "device id " << id << " out of range");
  clocks_[id] += duration;
}

void Cluster::advance_to(DeviceId id, SimTime t) {
  HADFL_CHECK_ARG(id < clocks_.size(), "device id " << id << " out of range");
  clocks_[id] = std::max(clocks_[id], t);
}

SimTime Cluster::barrier(const std::vector<DeviceId>& ids) {
  HADFL_CHECK_ARG(!ids.empty(), "barrier over empty device set");
  SimTime t = 0.0;
  for (DeviceId id : ids) t = std::max(t, time(id));
  for (DeviceId id : ids) clocks_[id] = t;
  return t;
}

SimTime Cluster::barrier_all() {
  std::vector<DeviceId> all(devices_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return barrier(all);
}

bool Cluster::alive_now(DeviceId id) const {
  return faults_.alive(id, time(id));
}

void Cluster::reset_clocks() {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
}

void Cluster::set_bandwidth_scales(const std::vector<double>& scales) {
  sim::set_bandwidth_scales(devices_, scales);
}

}  // namespace hadfl::sim
