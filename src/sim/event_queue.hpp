// Generic discrete-event queue.
//
// The training loops use per-device clocks (sim/cluster.hpp); the event
// queue serves components that need globally ordered timestamps — the
// Fig. 1 timeline bench and the coordinator's liveness monitor tests.
// Events at equal times pop in insertion order (stable).
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace hadfl::sim {

class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules `fn` at absolute virtual time `at` (>= current time).
  void schedule(SimTime at, Callback fn);

  /// Runs events in time order until the queue is empty or `until` is
  /// passed. Returns the number of events executed.
  std::size_t run(SimTime until = 1e300);

  /// Executes the single earliest event, if any. Returns whether one ran.
  bool step();

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime at;
    std::size_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::size_t next_seq_ = 0;
};

}  // namespace hadfl::sim
