// Generic discrete-event queue, built for fleet-scale event counts.
//
// The training loops use per-device clocks (sim/cluster.hpp); the event
// queue serves components that need globally ordered timestamps — the
// Fig. 1 timeline bench, the coordinator's liveness monitor tests, and the
// fleet bench's churn schedules. Events at equal times pop in insertion
// order (stable).
//
// Internals are sized for millions of pending events: the binary heap holds
// 16-byte POD entries (timestamp + sequence/slot), while the callbacks live
// in a pooled slot table whose slots are recycled through a free list — so
// heap sift operations move PODs, not std::function objects, and steady-
// state schedule/execute cycles reuse callback storage instead of growing.
// `run` drains equal-time events in batches: one heap-maintenance pass
// collects the whole timestamp cohort, then executes it in insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/time.hpp"

namespace hadfl::sim {

class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules `fn` at absolute virtual time `at` (>= current time).
  void schedule(SimTime at, Callback fn);

  /// Runs events in time order until the queue is empty or `until` is
  /// passed. Returns the number of events executed. The default bound is
  /// +infinity: every event executes, including ones scheduled at any
  /// finite far-future timestamp (or at infinity itself).
  std::size_t run(SimTime until = std::numeric_limits<SimTime>::infinity());

  /// Executes the single earliest event, if any. Returns whether one ran.
  bool step();

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  /// POD heap entry: the callback is pool_[slot]. `seq` breaks timestamp
  /// ties so equal-time events keep insertion order.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool later(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  /// Pops the heap top and returns its entry (heap invariant restored).
  Entry pop_top();

  /// Moves the callback out of its pool slot and recycles the slot.
  Callback take(std::uint32_t slot);

  std::vector<Entry> heap_;            ///< binary min-heap of PODs
  std::vector<Callback> pool_;         ///< slot -> callback
  std::vector<std::uint32_t> free_slots_;
  std::vector<Entry> batch_;           ///< equal-time drain staging (reused)
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hadfl::sim
