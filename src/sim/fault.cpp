#include "sim/fault.hpp"

#include "common/error.hpp"

namespace hadfl::sim {

void FaultInjector::schedule(FaultEvent event) {
  HADFL_CHECK_ARG(event.down_at >= 0.0, "fault time must be non-negative");
  HADFL_CHECK_ARG(event.up_at > event.down_at,
                  "fault recovery must come after the failure");
  by_device_[event.device].push_back(
      static_cast<std::uint32_t>(events_.size()));
  events_.push_back(event);
}

void FaultInjector::schedule_disconnect(DeviceId device, SimTime down_at) {
  schedule(FaultEvent{device, down_at,
                      std::numeric_limits<SimTime>::infinity()});
}

bool FaultInjector::alive(DeviceId device, SimTime t) const {
  const auto it = by_device_.find(device);
  if (it == by_device_.end()) return true;
  for (const std::uint32_t i : it->second) {
    const FaultEvent& e = events_[i];
    if (t >= e.down_at && t < e.up_at) return false;
  }
  return true;
}

void FaultInjector::schedule_drift(DriftEvent event) {
  HADFL_CHECK_ARG(event.factor > 0.0, "drift factor must be positive");
  if (event.kind == DriftKind::kRamp) {
    HADFL_CHECK_ARG(event.ramp_rounds > 0, "drift ramp needs >= 1 round");
  }
  if (event.kind == DriftKind::kSquare) {
    HADFL_CHECK_ARG(event.period > 0, "drift period must be positive");
    HADFL_CHECK_ARG(event.duty <= event.period,
                    "drift duty cannot exceed the period");
  }
  drift_by_device_[event.device].push_back(
      static_cast<std::uint32_t>(drift_.size()));
  drift_.push_back(event);
}

double FaultInjector::drift_multiplier(DeviceId device,
                                       std::size_t round) const {
  const auto it = drift_by_device_.find(device);
  if (it == drift_by_device_.end()) return 1.0;
  double mult = 1.0;
  for (const std::uint32_t i : it->second) {
    const DriftEvent& e = drift_[i];
    if (round < e.from_round) continue;
    const std::size_t since = round - e.from_round;
    switch (e.kind) {
      case DriftKind::kStep:
        mult *= e.factor;
        break;
      case DriftKind::kRamp: {
        const double progress =
            since + 1 >= e.ramp_rounds
                ? 1.0
                : static_cast<double>(since + 1) /
                      static_cast<double>(e.ramp_rounds);
        mult *= 1.0 + (e.factor - 1.0) * progress;
        break;
      }
      case DriftKind::kSquare:
        if (since % e.period < e.duty) mult *= e.factor;
        break;
    }
  }
  return mult;
}

bool FaultInjector::fails_within(DeviceId device, SimTime t0, SimTime t1) const {
  const auto it = by_device_.find(device);
  if (it == by_device_.end()) return false;
  for (const std::uint32_t i : it->second) {
    const FaultEvent& e = events_[i];
    if (e.down_at <= t1 && t0 < e.up_at) return true;
  }
  return false;
}

}  // namespace hadfl::sim
