#include "sim/fault.hpp"

#include "common/error.hpp"

namespace hadfl::sim {

void FaultInjector::schedule(FaultEvent event) {
  HADFL_CHECK_ARG(event.down_at >= 0.0, "fault time must be non-negative");
  HADFL_CHECK_ARG(event.up_at > event.down_at,
                  "fault recovery must come after the failure");
  by_device_[event.device].push_back(
      static_cast<std::uint32_t>(events_.size()));
  events_.push_back(event);
}

void FaultInjector::schedule_disconnect(DeviceId device, SimTime down_at) {
  schedule(FaultEvent{device, down_at,
                      std::numeric_limits<SimTime>::infinity()});
}

bool FaultInjector::alive(DeviceId device, SimTime t) const {
  const auto it = by_device_.find(device);
  if (it == by_device_.end()) return true;
  for (const std::uint32_t i : it->second) {
    const FaultEvent& e = events_[i];
    if (t >= e.down_at && t < e.up_at) return false;
  }
  return true;
}

bool FaultInjector::fails_within(DeviceId device, SimTime t0, SimTime t1) const {
  const auto it = by_device_.find(device);
  if (it == by_device_.end()) return false;
  for (const std::uint32_t i : it->second) {
    const FaultEvent& e = events_[i];
    if (e.down_at <= t1 && t0 < e.up_at) return true;
  }
  return false;
}

}  // namespace hadfl::sim
