// Struct-of-arrays device table for fleet-scale clusters.
//
// A 10^5–10^6 device fleet cannot afford a vector<DeviceSpec> with one
// heap-allocated name string per device, nor per-field access that drags a
// whole ~64-byte spec through the cache when the caller wants one double.
// The table stores each scalar field in its own contiguous array (the hot
// paths — iteration_time, link_time, grouping sort — each touch exactly one
// array) and synthesizes the default "dev<id>" name on demand, keeping only
// explicitly overridden names in a sparse map.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/device.hpp"

namespace hadfl::sim {

class DeviceTable {
 public:
  DeviceTable() = default;

  /// Adopts an explicit spec list (ids must be dense 0..K-1).
  static DeviceTable from_specs(const std::vector<DeviceSpec>& specs);

  /// Builds a `count`-device fleet by cycling a power-ratio pattern such as
  /// {3,3,1,1} — the fleet-scale generalization of devices_from_ratio,
  /// without materializing per-device specs or names.
  static DeviceTable from_ratio_cycled(const std::vector<double>& ratio,
                                       std::size_t count,
                                       double jitter_std = 0.0);

  std::size_t size() const { return compute_power_.size(); }
  bool empty() const { return compute_power_.empty(); }

  double compute_power(DeviceId id) const { return compute_power_[id]; }
  double jitter_std(DeviceId id) const { return jitter_std_[id]; }
  double bandwidth_scale(DeviceId id) const { return bandwidth_scale_[id]; }

  // Whole-column views for O(K)-per-round consumers (the fleet engine's
  // parallel range loops) — no per-device copies, no bounds re-checks.
  std::span<const double> compute_powers() const { return compute_power_; }
  std::span<const double> jitter_stds() const { return jitter_std_; }
  std::span<const double> bandwidth_scales() const { return bandwidth_scale_; }

  /// "dev<id>" unless a spec carried an explicit different name.
  std::string name(DeviceId id) const;

  /// Materializes a by-value spec for cold paths (traces, reports).
  DeviceSpec spec(DeviceId id) const;

  void set_bandwidth_scale(DeviceId id, double scale);

  /// Whether any device declares compute jitter (lets jitter-free fleets
  /// skip per-device stream bookkeeping entirely).
  bool any_jitter() const { return any_jitter_; }

 private:
  std::vector<double> compute_power_;
  std::vector<double> jitter_std_;
  std::vector<double> bandwidth_scale_;
  std::unordered_map<DeviceId, std::string> names_;  ///< non-default only
  bool any_jitter_ = false;
};

}  // namespace hadfl::sim
