#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace hadfl::sim {

void EventQueue::schedule(SimTime at, Callback fn) {
  HADFL_CHECK_ARG(at >= now_, "cannot schedule event in the past (at=" << at
                                  << ", now=" << now_ << ")");
  HADFL_CHECK_ARG(fn != nullptr, "null event callback");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    pool_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(std::move(fn));
  }
  heap_.push_back(Entry{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

EventQueue::Entry EventQueue::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Entry e = heap_.back();
  heap_.pop_back();
  return e;
}

EventQueue::Callback EventQueue::take(std::uint32_t slot) {
  Callback fn = std::move(pool_[slot]);
  pool_[slot] = nullptr;  // release captured state before recycling
  free_slots_.push_back(slot);
  return fn;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  const Entry e = pop_top();
  const Callback fn = take(e.slot);
  now_ = e.at;
  fn(now_);
  return true;
}

std::size_t EventQueue::run(SimTime until) {
  std::size_t executed = 0;
  // Steal the staging buffer for the duration of this drain so a callback
  // that re-enters run()/step() cannot alias it; capacity is handed back at
  // the end either way.
  std::vector<Entry> batch = std::move(batch_);
  while (!heap_.empty() && heap_.front().at <= until) {
    // Drain the whole equal-time cohort off the heap first, then execute it
    // in insertion order. Callbacks scheduled *for this same instant* by a
    // cohort member land in the next cohort (same `now`, larger seq) — the
    // same relative order a one-at-a-time drain produces.
    const SimTime t = heap_.front().at;
    batch.clear();
    while (!heap_.empty() && heap_.front().at == t) batch.push_back(pop_top());
    now_ = t;
    for (const Entry& e : batch) {
      const Callback fn = take(e.slot);
      fn(now_);
      ++executed;
    }
  }
  batch.clear();
  batch_ = std::move(batch);
  return executed;
}

}  // namespace hadfl::sim
