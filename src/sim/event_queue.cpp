#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace hadfl::sim {

void EventQueue::schedule(SimTime at, Callback fn) {
  HADFL_CHECK_ARG(at >= now_, "cannot schedule event in the past (at=" << at
                                  << ", now=" << now_ << ")");
  HADFL_CHECK_ARG(fn != nullptr, "null event callback");
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the callback (events are lightweight).
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.at;
  e.fn(now_);
  return true;
}

std::size_t EventQueue::run(SimTime until) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace hadfl::sim
