// Execution trace recording and ASCII timeline rendering.
//
// Used by the Fig. 1 reproduction to draw per-device compute/sync activity
// over virtual time, and by tests to assert scheduling behaviour.
#pragma once

#include <string>
#include <vector>

#include "sim/device.hpp"
#include "sim/time.hpp"

namespace hadfl::sim {

enum class SpanKind { kCompute, kSync, kIdle, kBroadcast, kStall };

const char* span_kind_name(SpanKind kind);

struct Span {
  DeviceId device = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  SpanKind kind = SpanKind::kCompute;
  std::string label;
};

class TraceRecorder {
 public:
  void record(DeviceId device, SimTime start, SimTime end, SpanKind kind,
              std::string label = {});

  const std::vector<Span>& spans() const { return spans_; }
  std::vector<Span> spans_for(DeviceId device) const;
  SimTime end_time() const;

  /// Renders an ASCII Gantt chart: one row per device, `columns` characters
  /// wide, compute = '#', sync = 'S', broadcast = 'B', idle = '.',
  /// stall = 'x'.
  std::string render_timeline(std::size_t num_devices,
                              std::size_t columns = 80) const;

  /// CSV dump (device, start, end, kind, label).
  void write_csv(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace hadfl::sim
