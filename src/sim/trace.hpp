// Execution trace recording and ASCII timeline rendering.
//
// The simulator's trace is the shared obs span model (src/obs/span.hpp):
// `sim::TraceRecorder` is `obs::Timeline`, so the simulator and the rt
// runtime emit the same compute/sync/broadcast/idle/stall/repair
// vocabulary and every exporter (obs/export.hpp: Chrome trace JSON, CSV,
// ASCII Gantt) applies to both. Used by the Fig. 1 reproduction to draw
// per-device compute/sync activity over virtual time, and by tests to
// assert scheduling behaviour.
#pragma once

#include "obs/span.hpp"
#include "sim/device.hpp"
#include "sim/time.hpp"

namespace hadfl::sim {

using SpanKind = obs::SpanKind;
using Span = obs::Span;
using TraceRecorder = obs::Timeline;
using obs::span_kind_char;
using obs::span_kind_name;

}  // namespace hadfl::sim
