#include "sim/device.hpp"

#include <sstream>

#include "common/error.hpp"

namespace hadfl::sim {

std::vector<DeviceSpec> devices_from_ratio(const std::vector<double>& ratio,
                                           double jitter_std) {
  HADFL_CHECK_ARG(!ratio.empty(), "device ratio must be non-empty");
  HADFL_CHECK_ARG(jitter_std >= 0.0, "jitter_std must be non-negative");
  std::vector<DeviceSpec> specs;
  specs.reserve(ratio.size());
  for (std::size_t i = 0; i < ratio.size(); ++i) {
    HADFL_CHECK_ARG(ratio[i] > 0.0,
                    "compute power must be positive, got " << ratio[i]);
    DeviceSpec spec;
    spec.id = i;
    spec.compute_power = ratio[i];
    spec.jitter_std = jitter_std;
    spec.name = "dev" + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  return specs;
}

void set_bandwidth_scales(std::vector<DeviceSpec>& devices,
                          const std::vector<double>& scales) {
  HADFL_CHECK_ARG(devices.size() == scales.size(),
                  "bandwidth scales count mismatch: " << scales.size()
                      << " for " << devices.size() << " devices");
  for (std::size_t i = 0; i < devices.size(); ++i) {
    HADFL_CHECK_ARG(scales[i] > 0.0,
                    "bandwidth scale must be positive, got " << scales[i]);
    devices[i].bandwidth_scale = scales[i];
  }
}

std::string ratio_to_string(const std::vector<double>& ratio) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < ratio.size(); ++i) {
    if (i) os << ',';
    if (ratio[i] == static_cast<double>(static_cast<long long>(ratio[i]))) {
      os << static_cast<long long>(ratio[i]);
    } else {
      os << ratio[i];
    }
  }
  os << ']';
  return os.str();
}

}  // namespace hadfl::sim
