#include "sim/device_table.hpp"

#include "common/error.hpp"

namespace hadfl::sim {

DeviceTable DeviceTable::from_specs(const std::vector<DeviceSpec>& specs) {
  DeviceTable table;
  table.compute_power_.reserve(specs.size());
  table.jitter_std_.reserve(specs.size());
  table.bandwidth_scale_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DeviceSpec& spec = specs[i];
    HADFL_CHECK_ARG(spec.id == i,
                    "device ids must be dense 0..K-1; device " << i
                        << " has id " << spec.id);
    HADFL_CHECK_ARG(spec.compute_power > 0.0,
                    "compute power must be positive");
    HADFL_CHECK_ARG(spec.jitter_std >= 0.0, "jitter_std must be non-negative");
    HADFL_CHECK_ARG(spec.bandwidth_scale > 0.0,
                    "bandwidth scale must be positive");
    table.compute_power_.push_back(spec.compute_power);
    table.jitter_std_.push_back(spec.jitter_std);
    table.bandwidth_scale_.push_back(spec.bandwidth_scale);
    table.any_jitter_ = table.any_jitter_ || spec.jitter_std > 0.0;
    if (!spec.name.empty() && spec.name != "dev" + std::to_string(i)) {
      table.names_.emplace(spec.id, spec.name);
    }
  }
  return table;
}

DeviceTable DeviceTable::from_ratio_cycled(const std::vector<double>& ratio,
                                           std::size_t count,
                                           double jitter_std) {
  HADFL_CHECK_ARG(!ratio.empty(), "device ratio must be non-empty");
  HADFL_CHECK_ARG(count > 0, "fleet needs at least one device");
  HADFL_CHECK_ARG(jitter_std >= 0.0, "jitter_std must be non-negative");
  for (const double r : ratio) {
    HADFL_CHECK_ARG(r > 0.0, "compute power must be positive, got " << r);
  }
  DeviceTable table;
  table.compute_power_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    table.compute_power_.push_back(ratio[i % ratio.size()]);
  }
  table.jitter_std_.assign(count, jitter_std);
  table.bandwidth_scale_.assign(count, 1.0);
  table.any_jitter_ = jitter_std > 0.0;
  return table;
}

std::string DeviceTable::name(DeviceId id) const {
  HADFL_CHECK_ARG(id < size(), "device id " << id << " out of range");
  const auto it = names_.find(id);
  if (it != names_.end()) return it->second;
  return "dev" + std::to_string(id);
}

DeviceSpec DeviceTable::spec(DeviceId id) const {
  HADFL_CHECK_ARG(id < size(), "device id " << id << " out of range");
  DeviceSpec spec;
  spec.id = id;
  spec.compute_power = compute_power_[id];
  spec.jitter_std = jitter_std_[id];
  spec.bandwidth_scale = bandwidth_scale_[id];
  spec.name = name(id);
  return spec;
}

void DeviceTable::set_bandwidth_scale(DeviceId id, double scale) {
  HADFL_CHECK_ARG(id < size(), "device id " << id << " out of range");
  HADFL_CHECK_ARG(scale > 0.0,
                  "bandwidth scale must be positive, got " << scale);
  bandwidth_scale_[id] = scale;
}

}  // namespace hadfl::sim
