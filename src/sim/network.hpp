// Link cost model.
//
// Transfers are priced as latency + bytes / bandwidth. The default models
// the paper's testbed interconnect (PCIe 3.0 x8: ~7.88 GB/s effective,
// microsecond-scale latency). Federated WAN settings can be modelled by
// raising latency and dropping bandwidth (see the noniid example).
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace hadfl::sim {

struct NetworkModel {
  double latency = 5e-6;            ///< seconds per message
  double bandwidth = 7.88e9;        ///< bytes per second

  /// Virtual seconds to move `bytes` across one link.
  SimTime transfer_time(std::size_t bytes) const;

  /// PCIe 3.0 x8 (the paper's testbed).
  static NetworkModel pcie3_x8();

  /// A wide-area federated link: 20 ms latency, 100 Mbit/s.
  static NetworkModel wan();
};

}  // namespace hadfl::sim
