// Cluster: per-device virtual clocks over heterogeneous device specs.
//
// The simulation uses Lamport-style per-device clocks instead of a central
// event loop: compute advances a device's own clock; point-to-point
// communication (src/comm) advances the receiver to the message arrival
// time; barriers advance a set of devices to their max. This models the
// paper's barrier-structured training rounds exactly while staying fully
// deterministic.
//
// Fleet-scale layout: device attributes live in a struct-of-arrays
// DeviceTable (no per-device spec/name allocations), the global max clock
// is maintained incrementally (clocks never move backwards, so the running
// max is exact and max_time()/barrier_all() cost O(1)/O(K) with no scan),
// and compute-jitter RNG streams live in a dense per-device array seeded
// lazily — each stream is seeded from (seed, id) alone, so draw order
// across devices does not couple streams.
//
// Thread-compatible subset: the `*_unsynced` clock ops mutate only the
// target device's slots (clock, jitter stream) and skip the incremental
// max, so callers may run them concurrently over DISJOINT device sets and
// then merge their per-range maxima back with note_clock(). Everything
// else on this class is single-threaded.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sim/device.hpp"
#include "sim/device_table.hpp"
#include "sim/fault.hpp"
#include "sim/time.hpp"

namespace hadfl::sim {

class Cluster {
 public:
  /// `base_iteration_time` is the virtual seconds one training iteration
  /// (one mini-batch) takes on a power-1.0 device.
  Cluster(DeviceTable devices, double base_iteration_time,
          std::uint64_t seed = 1);
  Cluster(std::vector<DeviceSpec> devices, double base_iteration_time,
          std::uint64_t seed = 1);

  std::size_t size() const { return table_.size(); }

  /// Materialized by-value spec — cold paths only (traces, reports). Hot
  /// paths use the scalar accessors below, which read one SoA array.
  DeviceSpec device(DeviceId id) const;

  const DeviceTable& table() const { return table_; }
  double compute_power(DeviceId id) const;
  double bandwidth_scale(DeviceId id) const;
  double jitter_std(DeviceId id) const;

  /// Deterministic per-iteration cost for a device (no jitter).
  SimTime iteration_time(DeviceId id) const;

  /// Current virtual clock of a device.
  SimTime time(DeviceId id) const;

  /// Latest clock across all devices (== global time at a barrier). O(1):
  /// the max is maintained incrementally since clocks never decrease.
  SimTime max_time() const { return max_clock_; }

  /// Advance a device's clock by `iterations` compute steps. Jitter (if the
  /// spec declares any) perturbs the *total* duration multiplicatively,
  /// modelling OS / co-tenant interference per training burst. Returns the
  /// elapsed virtual duration.
  SimTime advance_compute(DeviceId id, std::size_t iterations);

  /// Draws this burst's multiplicative compute-time disturbance for a
  /// device: 1.0 when the spec has no jitter, otherwise clamped noise.
  /// Exposed so deadline-bounded trainers (HADFL rounds) can decide how
  /// many steps fit the window *before* running them. Each device draws
  /// from its own lazily created stream seeded by (cluster seed, id).
  double sample_jitter_factor(DeviceId id);

  /// Advance a device's clock by an explicit duration (stall, timeout, ...).
  void advance(DeviceId id, SimTime duration);

  /// Set a device's clock to at least `t` (message arrival, barrier).
  void advance_to(DeviceId id, SimTime t);

  // Thread-compatible variants: identical clock/jitter arithmetic, but the
  // incremental global max is NOT updated. Safe to call concurrently for
  // disjoint device ids; afterwards each caller folds its range-local
  // maximum back in (in any order — max is commutative) via note_clock().
  SimTime advance_compute_unsynced(DeviceId id, std::size_t iterations);
  void advance_unsynced(DeviceId id, SimTime duration);
  void advance_to_unsynced(DeviceId id, SimTime t);

  /// Folds an externally computed clock value into the incremental max.
  /// Required after any *_unsynced batch; harmless to call with stale times.
  void note_clock(SimTime t) { max_clock_ = std::max(max_clock_, t); }

  /// Barrier over a subset: everyone in `ids` jumps to the subset max.
  SimTime barrier(const std::vector<DeviceId>& ids);

  /// Barrier over all devices: everyone jumps to max_time(). No scan —
  /// the incremental max is already the barrier time.
  SimTime barrier_all();

  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

  /// True if the device is reachable at its own current time.
  bool alive_now(DeviceId id) const;

  /// Resets all clocks to zero (new experiment on the same cluster).
  void reset_clocks();

  /// Applies per-device link-speed scales (length must equal size()).
  void set_bandwidth_scales(const std::vector<double>& scales);

 private:
  Rng& jitter_stream(DeviceId id);

  DeviceTable table_;
  std::vector<SimTime> clocks_;
  SimTime max_clock_ = 0.0;
  double base_iteration_time_;
  FaultInjector faults_;
  std::uint64_t seed_;
  // Dense per-device jitter streams, seeded lazily on first draw. Sized in
  // the constructor only when some device declares jitter, so jitter-free
  // fleets pay nothing. Dense (not a hash map) so concurrent first-draws on
  // distinct ids touch disjoint slots — no rehash, no shared buckets.
  std::vector<Rng> jitter_streams_;
  std::vector<std::uint8_t> jitter_seeded_;
};

}  // namespace hadfl::sim
