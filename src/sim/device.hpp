// Heterogeneous device descriptions.
//
// A device's computing power is expressed relative to a power-1.0 reference
// device whose training iteration takes `base_iteration_time` virtual
// seconds. The paper encodes heterogeneity as integer ratios like [3,3,1,1]
// ("computing power of GPU 0 is three times that of GPU 2/3").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hadfl::sim {

using DeviceId = std::size_t;

struct DeviceSpec {
  DeviceId id = 0;
  double compute_power = 1.0;    ///< relative speed; > 0
  double jitter_std = 0.0;       ///< multiplicative lognormal-ish noise on
                                 ///< per-round compute time (0 = none)
  double bandwidth_scale = 1.0;  ///< this device's link speed relative to
                                 ///< the network model's bandwidth (> 0);
                                 ///< paper §VI future work: heterogeneous
                                 ///< network bandwidth
  std::string name;              ///< for traces; defaults to "dev<id>"
};

/// Builds K device specs from a power-ratio array such as {3,3,1,1}.
std::vector<DeviceSpec> devices_from_ratio(const std::vector<double>& ratio,
                                           double jitter_std = 0.0);

/// Applies per-device link-speed scales (same length as the device list).
void set_bandwidth_scales(std::vector<DeviceSpec>& devices,
                          const std::vector<double>& scales);

/// Human-readable "[3,3,1,1]" form of a ratio.
std::string ratio_to_string(const std::vector<double>& ratio);

}  // namespace hadfl::sim
