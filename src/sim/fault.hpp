// Fault injection: scheduled device disconnects (paper §III-D).
//
// A fault is an interval [down_at, up_at) of virtual time during which a
// device is unreachable. up_at may be infinity for a permanent failure.
//
// Fleet-scale churn plans schedule one event per churning device, so the
// liveness queries (`alive`, `fails_within`) — which run per device per
// round — index events by device instead of scanning the full plan.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sim/device.hpp"
#include "sim/time.hpp"

namespace hadfl::sim {

struct FaultEvent {
  DeviceId device = 0;
  SimTime down_at = 0.0;
  SimTime up_at = std::numeric_limits<SimTime>::infinity();
};

class FaultInjector {
 public:
  FaultInjector() = default;

  void schedule(FaultEvent event);
  void schedule_disconnect(DeviceId device, SimTime down_at);

  /// True if the device is reachable at virtual time `t`. O(events of this
  /// device), not O(all events).
  bool alive(DeviceId device, SimTime t) const;

  /// True if the device is down at any point within [t0, t1].
  bool fails_within(DeviceId device, SimTime t0, SimTime t1) const;

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
  /// device -> indices into events_; only churning devices have an entry.
  std::unordered_map<DeviceId, std::vector<std::uint32_t>> by_device_;
};

}  // namespace hadfl::sim
