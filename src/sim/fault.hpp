// Fault injection: scheduled device disconnects (paper §III-D) and
// speed drift (thermal throttles, background load) for the control loop.
//
// A fault is an interval [down_at, up_at) of virtual time during which a
// device is unreachable. up_at may be infinity for a permanent failure.
// A drift event is a round-indexed multiplier on a device's true step
// time; devices without drift always multiply by exactly 1.0.
//
// Fleet-scale churn plans schedule one event per churning device, so the
// liveness queries (`alive`, `fails_within`) — which run per device per
// round — index events by device instead of scanning the full plan.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sim/device.hpp"
#include "sim/time.hpp"

namespace hadfl::sim {

struct FaultEvent {
  DeviceId device = 0;
  SimTime down_at = 0.0;
  SimTime up_at = std::numeric_limits<SimTime>::infinity();
};

/// Shape of a speed-drift injection (step-time multiplier over rounds).
enum class DriftKind : std::uint8_t {
  kStep = 0,   ///< jumps to `factor` at from_round and stays there
  kRamp = 1,   ///< thermal throttle: ramps 1 → factor over ramp_rounds
  kSquare = 2  ///< background load: `duty` rounds at factor per `period`
};

/// A scheduled change to a device's true per-step compute time, indexed by
/// sync round (drift is a compute-speed phenomenon; rounds are the unit at
/// which the scheduler re-plans, so both backends evaluate it identically).
struct DriftEvent {
  DeviceId device = 0;
  std::size_t from_round = 0;  ///< first sync round the drift applies to
  double factor = 1.0;         ///< step-time multiplier at full effect
  DriftKind kind = DriftKind::kStep;
  std::size_t ramp_rounds = 1;  ///< kRamp: rounds to reach `factor`
  std::size_t period = 2;       ///< kSquare: full wave length in rounds
  std::size_t duty = 1;         ///< kSquare: loaded rounds per period
};

class FaultInjector {
 public:
  FaultInjector() = default;

  void schedule(FaultEvent event);
  void schedule_disconnect(DeviceId device, SimTime down_at);

  /// True if the device is reachable at virtual time `t`. O(events of this
  /// device), not O(all events).
  bool alive(DeviceId device, SimTime t) const;

  /// True if the device is down at any point within [t0, t1].
  bool fails_within(DeviceId device, SimTime t0, SimTime t1) const;

  void schedule_drift(DriftEvent event);

  /// The device's step-time multiplier at the given sync round: the product
  /// of all of its drift events' contributions. Exactly 1.0 when the device
  /// has no drift scheduled, so drift-free runs multiply step times by 1.0
  /// and stay bit-identical.
  double drift_multiplier(DeviceId device, std::size_t round) const;

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  const std::vector<DriftEvent>& drift_events() const { return drift_; }
  bool has_drift() const { return !drift_.empty(); }

 private:
  std::vector<FaultEvent> events_;
  /// device -> indices into events_; only churning devices have an entry.
  std::unordered_map<DeviceId, std::vector<std::uint32_t>> by_device_;
  std::vector<DriftEvent> drift_;
  std::unordered_map<DeviceId, std::vector<std::uint32_t>> drift_by_device_;
};

}  // namespace hadfl::sim
