// hadfl_node — one device process of a `hadfl_run --backend=net` run.
//
// Not meant to be launched by hand: net::ProcessFleet spawns K of these
// with the coordinator's scenario flags forwarded verbatim plus the
// endpoint wiring below. Each node rebuilds the identical run context from
// the shared seed (exp/cli_setup.hpp — the same construction path
// hadfl_run uses), joins the socket mesh as endpoint --node-id, and runs
// the shared device worker loop until the coordinator's kStop.
//
// Endpoint wiring (injected by the fleet):
//   --node-id=<d>         this process's device id
//   --run-nonce=<u64>     run epoch every kHello must present
//   --transport=tcp|uds
//   --listen-fd=<fd>      tcp: inherited pre-bound listener
//   --tcp-ports=<list>    tcp: every node's loopback port, id order
//   --socket-dir=<path>   uds: directory of node-<id>.sock paths
//   --connect-timeout=<s> mesh formation deadline            [10]
#include <cstdlib>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "exp/cli_setup.hpp"
#include "net/runner.hpp"

using namespace hadfl;

namespace {

const std::vector<std::string> kKnownOptions{
    // scenario flags (exp/cli_setup.hpp forwards exactly these)
    "model", "ratio", "epochs", "scale", "seed", "np", "tsync", "policy",
    "mix", "group-size", "partition", "network", "jitter", "throttle",
    "sync-chunks", "sync-codec", "topk-ratio", "wallclock", "int8-broadcast",
    "adaptive", "adaptive-alpha", "adaptive-warmup", "adaptive-tune",
    // endpoint wiring
    "node-id", "run-nonce", "transport", "listen-fd", "tcp-ports",
    "socket-dir", "connect-timeout", "verbose"};

std::vector<std::uint16_t> parse_ports(const std::string& list) {
  std::vector<std::uint16_t> ports;
  for (const std::string& piece : split_csv_list(list)) {
    const long value = std::atol(piece.c_str());
    if (value <= 0 || value > 65535) {
      throw InvalidArgument("bad --tcp-ports entry: " + piece);
    }
    ports.push_back(static_cast<std::uint16_t>(value));
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const auto unknown = args.unknown_options(kKnownOptions);
    if (!unknown.empty()) {
      std::cerr << "hadfl_node: unknown option --" << unknown.front() << "\n";
      return 2;
    }
    if (args.has("verbose")) set_log_level(LogLevel::kInfo);
    const std::string codec_error = exp::sync_codec_flag_error(
        exp::sync_codec_arg(args), args.get_double("topk-ratio", 0.05));
    if (!codec_error.empty()) {
      std::cerr << "hadfl_node: " << codec_error << "\n";
      return 2;
    }
    if (!args.has("node-id") || !args.has("run-nonce")) {
      std::cerr << "hadfl_node: --node-id and --run-nonce are required "
                   "(this binary is launched by hadfl_run --backend=net)\n";
      return 2;
    }

    net::NodeOptions options;
    options.node_id =
        static_cast<rt::DeviceId>(args.get_int("node-id", 0));
    options.run_nonce = std::strtoull(args.get("run-nonce", "0").c_str(),
                                      nullptr, 10);
    options.connect_timeout_s = args.get_double("connect-timeout", 10.0);
    const std::string transport = args.get("transport", "tcp");
    if (transport == "tcp") {
      options.kind = net::TransportKind::kTcp;
      options.listen_fd = args.get_int("listen-fd", -1);
      options.tcp_ports = parse_ports(args.get("tcp-ports", ""));
    } else if (transport == "uds") {
      options.kind = net::TransportKind::kUds;
      options.socket_dir = args.get("socket-dir", "");
    } else {
      std::cerr << "hadfl_node: unknown --transport: " << transport << "\n";
      return 2;
    }

    const exp::RunSetup setup = exp::make_run_setup(args);
    const rt::RtConfig config = exp::make_rt_config(args, setup.scenario);
    const fl::SchemeContext ctx = setup.context();
    return net::run_hadfl_node(ctx, config, options);
  } catch (const Error& e) {
    std::cerr << "hadfl_node: error: " << e.what() << "\n";
    return 1;
  }
}
