// hadfl_compare — run every training scheme on one scenario and print a
// side-by-side comparison (Table-I style), optionally dumping all
// convergence curves to CSV.
//
// Examples:
//   hadfl_compare --model=resnet18 --ratio=4,2,2,1
//   hadfl_compare --model=mlp --epochs=12 --csv=compare.csv
//
// Options: a subset of hadfl_run's — --model, --ratio, --epochs, --scale,
// --seed, --np, --tsync, --network, --jitter, --csv, --verbose.
#include <iostream>

#include "baselines/async_fedavg.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "exp/report.hpp"

using namespace hadfl;

namespace {

const std::vector<std::string> kKnownOptions{
    "model", "ratio", "epochs", "scale",   "seed", "np",
    "tsync", "network", "jitter", "csv",   "verbose", "help"};

nn::Architecture parse_model(const std::string& name) {
  if (name == "mlp") return nn::Architecture::kMlp;
  if (name == "resnet18") return nn::Architecture::kResNet18Lite;
  if (name == "vgg16") return nn::Architecture::kVgg16Lite;
  throw InvalidArgument("unknown --model: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.has("help")) {
      std::cout << "usage: hadfl_compare [--model=mlp|resnet18|vgg16]"
                   " [--ratio=3,3,1,1]\n"
                   "                     [--epochs=N] [--scale=S] [--seed=N]"
                   " [--np=N] [--tsync=N]\n"
                   "                     [--network=pcie|wan] [--jitter=S]"
                   " [--csv=PATH] [--verbose]\n";
      return 0;
    }
    const auto unknown = args.unknown_options(kKnownOptions);
    if (!unknown.empty()) {
      std::cerr << "unknown option --" << unknown.front() << "\n";
      return 2;
    }
    if (args.has("verbose")) set_log_level(LogLevel::kInfo);

    exp::Scenario s = exp::paper_scenario(
        parse_model(args.get("model", "mlp")),
        args.get_double_list("ratio", {3, 3, 1, 1}),
        args.get_double("scale", 1.0),
        static_cast<std::uint64_t>(args.get_int("seed", 7)));
    s.train.total_epochs = args.get_int("epochs", 16);
    s.jitter_std = args.get_double("jitter", 0.0);
    s.hadfl.strategy.select_count =
        static_cast<std::size_t>(args.get_int("np", 2));
    s.hadfl.strategy.t_sync = args.get_int("tsync", 1);
    if (args.get("network", "pcie") == "wan") {
      s.network = sim::NetworkModel::wan();
    }

    exp::Environment env(s);
    std::cout << "== hadfl_compare: " << s.name << ", "
              << s.train.total_epochs << " epochs ==\n\nrunning 5 schemes"
              << "...\n";

    std::unique_ptr<CsvWriter> csv;
    if (args.has("csv")) {
      csv = std::make_unique<CsvWriter>(
          args.get("csv"), std::vector<std::string>{
                               "series", "epoch", "time", "train_loss",
                               "test_loss", "test_acc"});
    }

    TextTable table({"scheme", "best acc", "time to best [s]",
                     "total comm [MB]", "server [MB]"});
    double hadfl_time = 0.0;
    auto add = [&](const std::string& name, const fl::SchemeResult& r,
                   std::size_t server_bytes) {
      const exp::SchemeSummary sum = exp::summarize(r.metrics);
      if (name == "hadfl") hadfl_time = sum.time_to_best;
      table.add_row(
          {name, TextTable::num(100.0 * sum.best_accuracy, 1) + "%",
           TextTable::num(sum.time_to_best, 1),
           TextTable::num(static_cast<double>(r.volume.total_sent() +
                                              r.volume.total_received()) /
                              (1024.0 * 1024.0), 0),
           TextTable::num(static_cast<double>(server_bytes) /
                              (1024.0 * 1024.0), 0)});
      if (csv) r.metrics.append_csv_rows(*csv, name);
    };

    {
      fl::SchemeContext ctx = env.context();
      add("hadfl", core::run_hadfl(ctx, s.hadfl).scheme, 0);
    }
    {
      fl::SchemeContext ctx = env.context();
      add("distributed", baselines::run_distributed(ctx), 0);
    }
    {
      fl::SchemeContext ctx = env.context();
      add("decentralized-fedavg",
          baselines::run_decentralized_fedavg(ctx), 0);
    }
    {
      fl::SchemeContext ctx = env.context();
      const auto r = baselines::run_central_fedavg(ctx);
      add("central-fedavg", r.scheme, r.server_bytes);
    }
    {
      fl::SchemeContext ctx = env.context();
      const auto r = baselines::run_async_fedavg(ctx);
      add("async-fedavg", r.scheme, r.server_bytes);
    }

    std::cout << table.render();
    if (hadfl_time > 0.0) {
      std::cout << "\n(times are virtual seconds; speedups vs HADFL follow"
                   " from the time column)\n";
    }
    if (csv) std::cout << "curves written to " << csv->path() << "\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
