// hadfl_run — command-line driver for the HADFL framework.
//
// Runs any training scheme on a configurable heterogeneous cluster and
// prints a convergence summary; optionally dumps the full convergence
// series as CSV.
//
// Examples:
//   hadfl_run --scheme=hadfl --model=resnet18 --ratio=4,2,2,1
//   hadfl_run --scheme=dfedavg --model=mlp --epochs=10 --csv=curve.csv
//   hadfl_run --scheme=hadfl --backend=net --transport=tcp --ratio=2,2,1,1
//
// Options (defaults in brackets):
//   --scheme=hadfl|distributed|dfedavg|central|async   [hadfl]
//   --backend=sim|rt|net    hadfl execution backend    [sim]
//                           (rt = one real thread per device; net = one
//                           real process per device on sockets; see
//                           docs/RUNTIME.md and docs/NETWORK.md)
//   --transport=tcp|uds     net: socket flavour        [tcp]
//   --node-binary=<path>    net: hadfl_node to exec    [next to hadfl_run]
//   --time-scale=<float>    rt: wall s per virtual network s   [0]
//   --throttle=<float>      rt/net: wall s per virtual compute s [0]
//   --wallclock             rt/net: measure epoch times on the real clock
//   --die=<dev:round:step>  rt/net: inject a device death mid-round
//   --sync-chunks=<int>     pipelined-sync chunk count [0 = default]
//   --sync-codec=none|int8|topk   compress sync/broadcast deltas with
//                           error feedback (all backends)  [none]
//   --topk-ratio=<float>    topk: fraction of entries kept [0.05]
//   --int8-broadcast        alias for --sync-codec=int8
//   --model=mlp|resnet18|vgg16                         [mlp]
//   --ratio=<comma powers>                             [3,3,1,1]
//   --epochs=<int>          total training epochs      [16]
//   --scale=<float>         dataset scale              [1.0]
//   --seed=<int>                                       [7]
//   --np=<int>              HADFL N_p                  [2]
//   --tsync=<int>           HADFL T_sync               [1]
//   --policy=<name>         HADFL selection policy     [gaussian-quartile]
//   --mix=<float>           HADFL broadcast mix weight [0.8]
//   --group-size=<int>      HADFL hierarchical groups  [0 = flat]
//   --partition=iid|dirichlet:<alpha>|shards:<n>       [iid]
//   --network=pcie|wan                                 [pcie]
//   --jitter=<float>        compute jitter sigma       [0]
//   --adaptive              close the control loop: re-estimate per-device
//                           step budgets from measured step times, auto-tune
//                           --sync-chunks from observed sync latency, and
//                           re-pick the sync codec per round from delta
//                           norms (src/ctrl, docs/CONTROLLER.md). Off by
//                           default; off is bit-identical to static runs
//   --adaptive-alpha=<f>    adaptive: step-time EWMA weight     [0.4]
//   --adaptive-warmup=<int> adaptive: observed rounds before the controller
//                           overrides the warm-up strategy      [2]
//   --adaptive-tune=<list>  adaptive: comma subset of budgets,chunks,codec
//                           to tune                             [all three]
//   --drift=<specs>         sim/rt/net: inject speed drift; comma-separated
//                           DEV:ROUND:FACTOR[:step|ramp:R|square:P:D]
//                           (step = permanent slowdown, ramp = thermal
//                           throttle over R rounds, square = background
//                           load with period P and duty D). Like --die,
//                           not forwarded to net nodes
//   --fleet                 sim: run the fleet-scale engine on a generated
//                           fleet world (see docs/SIMULATOR.md). Uses
//                           --ratio/--jitter/--seed/--epochs plus the
//                           fleet flags below; --model/--scale/--partition
//                           do not apply (the world is fixed to the scaled
//                           MLP with a cyclic partition)
//   --fleet-devices=<int>   fleet: device count K               [1000]
//   --fleet-cohort=<int>    fleet: devices trained per round per group
//                           [0 = all, exact mode, bit-identical to the sim
//                           backend; >= K also degrades to exact]
//   --fleet-rounds=<int>    fleet: sync-round cap               [0 = none]
//   --fleet-churn=<float>   fleet: fraction of devices that churn [0]
//   --fleet-threads=<int>   fleet: threads for the per-round O(K) scalar
//                           sweeps [0 = auto; results are bit-identical
//                           at any value]
//   --fleet-momentum=<float>  fleet: SGD momentum; per-device velocity
//                           lives in a CoW slab store               [0]
//   --csv=<path>            write the convergence series
//   --trace-out=<path>      write a Chrome/Perfetto trace of the run
//                           (hadfl scheme; sim and rt backends, and the
//                           per-round phase spans under --fleet) and print
//                           the per-device time breakdown
//   --metrics-out=<path>    rt/net: write the telemetry counters CSV
//   --verbose               info-level logging
#include <unistd.h>

#include <cstdio>
#include <iostream>

#include "baselines/async_fedavg.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/fleet.hpp"
#include "core/trainer.hpp"
#include "exp/cli_setup.hpp"
#include "exp/fleet_world.hpp"
#include "exp/report.hpp"
#include "net/runner.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "rt/runner.hpp"

using namespace hadfl;

namespace {

const std::vector<std::string> kKnownOptions{
    "scheme", "model", "ratio",  "epochs",     "scale", "seed",
    "np",     "tsync", "policy", "mix",        "group-size",
    "partition", "network", "jitter", "csv",   "verbose", "help",
    "backend", "transport", "node-binary", "time-scale", "throttle",
    "wallclock", "die", "sync-chunks", "sync-codec", "topk-ratio",
    "int8-broadcast", "trace-out",
    "metrics-out", "fleet", "fleet-devices", "fleet-cohort",
    "fleet-rounds", "fleet-churn", "fleet-threads", "fleet-momentum",
    "adaptive", "adaptive-alpha", "adaptive-warmup", "adaptive-tune",
    "drift"};

void print_usage() {
  std::cout <<
      "usage: hadfl_run [--scheme=hadfl|distributed|dfedavg|central|async]\n"
      "                 [--model=mlp|resnet18|vgg16] [--ratio=3,3,1,1]\n"
      "                 [--epochs=N] [--scale=S] [--seed=N] [--np=N]\n"
      "                 [--tsync=N] [--policy=NAME] [--mix=W]\n"
      "                 [--group-size=N] [--partition=iid|dirichlet:A|"
      "shards:N]\n"
      "                 [--network=pcie|wan] [--jitter=S] [--csv=PATH]\n"
      "                 [--backend=sim|rt|net] [--transport=tcp|uds]\n"
      "                 [--node-binary=PATH] [--time-scale=S]\n"
      "                 [--throttle=S] [--wallclock] [--die=DEV:ROUND:STEP]\n"
      "                 [--sync-chunks=C] [--sync-codec=none|int8|topk]\n"
      "                 [--topk-ratio=R] [--int8-broadcast]\n"
      "                 [--adaptive] [--adaptive-alpha=F]\n"
      "                 [--adaptive-warmup=N] [--adaptive-tune=LIST]\n"
      "                 [--drift=DEV:ROUND:FACTOR[:KIND[:P1[:P2]]]]\n"
      "                 [--fleet] [--fleet-devices=K] [--fleet-cohort=N]\n"
      "                 [--fleet-rounds=R] [--fleet-churn=F]\n"
      "                 [--fleet-threads=T] [--fleet-momentum=MU]\n"
      "                 [--trace-out=PATH] [--metrics-out=PATH] [--verbose]\n";
}

void report(const fl::SchemeResult& result, const std::string& csv_path) {
  const exp::SchemeSummary sum = exp::summarize(result.metrics);
  std::cout << "scheme:            " << result.scheme_name << "\n"
            << "best accuracy:     " << 100.0 * sum.best_accuracy << "%\n"
            << "time to best:      " << sum.time_to_best << " virtual s\n"
            << "total time:        " << result.total_time << " virtual s\n"
            << "sync rounds:       " << result.sync_rounds << "\n"
            << "device comm:       "
            << static_cast<double>(result.volume.total_sent() +
                                   result.volume.total_received()) /
                   (1024.0 * 1024.0)
            << " MB\n";
  if (!result.final_state.empty()) {
    // The cross-backend identity line: a seeded sim / rt / net run must
    // print the same hash (the CI loopback smoke greps it).
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(
                      exp::state_hash(result.final_state)));
    std::cout << "state hash:        " << hex << "\n";
  }
  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"series", "epoch", "time", "train_loss",
                             "test_loss", "test_acc"});
    result.metrics.append_csv_rows(csv, result.scheme_name);
    std::cout << "curve written to:  " << csv_path << "\n";
  }
}

/// The --fleet path: builds the generated fleet world (exp/fleet_world.hpp)
/// and runs the fleet-scale engine on it. Exact mode (cohort 0) is
/// bit-identical to the sim backend on the same world, so the "state hash"
/// line is comparable across `--fleet-cohort=0` runs and tests.
int run_fleet(const ArgParser& args, const std::string& csv,
              const std::string& trace_out) {
  exp::FleetWorldConfig fw;
  fw.devices = static_cast<std::size_t>(args.get_int("fleet-devices", 1000));
  fw.ratio = args.get_double_list("ratio", {3, 3, 1, 1});
  fw.jitter_std = args.get_double("jitter", 0.0);
  fw.momentum = args.get_double("fleet-momentum", 0.0);
  fw.epochs = args.get_int("epochs", 4);
  fw.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  fw.churn.fraction = args.get_double("fleet-churn", 0.0);
  exp::FleetWorld world(fw);

  exp::Scenario& s = world.scenario();
  s.hadfl.strategy.select_count =
      static_cast<std::size_t>(args.get_int("np", 2));
  s.hadfl.strategy.t_sync = args.get_int("tsync", 1);
  s.hadfl.broadcast_mix_weight = args.get_double("mix", 0.8);
  s.hadfl.policy =
      core::make_selection_policy(args.get("policy", "gaussian-quartile"));
  const int group_size = args.get_int("group-size", 0);
  if (group_size > 0) {
    s.hadfl.grouping.group_size = static_cast<std::size_t>(group_size);
  }

  core::FleetConfig fleet;
  fleet.cohort = static_cast<std::size_t>(args.get_int("fleet-cohort", 0));
  fleet.max_rounds =
      static_cast<std::size_t>(args.get_int("fleet-rounds", 0));
  fleet.scalar_threads =
      static_cast<std::size_t>(args.get_int("fleet-threads", 0));
  obs::SpanRecorder recorder(1);  // one coordinator track of phase spans
  if (!trace_out.empty()) fleet.recorder = &recorder;

  std::cout << "== hadfl_run: hadfl on " << s.name << " ==\n";
  const core::FleetResult r =
      core::run_hadfl_fleet(world.context(), s.hadfl, fleet);
  if (!trace_out.empty()) {
    obs::write_chrome_trace(trace_out, recorder.drain().spans());
    std::cout << "trace written to:  " << trace_out
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  const double mb = 1024.0 * 1024.0;
  const double peak = static_cast<double>(r.stats.peak_state_bytes);
  const double naive = static_cast<double>(r.stats.naive_state_bytes);
  std::cout << "backend:           fleet ("
            << (fleet.cohort == 0
                    ? std::string("exact")
                    : "cohort " + std::to_string(fleet.cohort))
            << ")\n"
            << "devices:           " << r.stats.devices
            << " (churn events: " << world.churn_events() << ")\n"
            << "fleet rounds:      " << r.stats.rounds << "\n"
            << "train episodes:    " << r.stats.train_episodes << "\n"
            << "peak model mem:    " << peak / mb << " MB (naive "
            << naive / mb << " MB, "
            << (peak > 0.0 ? naive / peak : 0.0) << "x less)\n"
            << "hyperperiod:       " << r.extras.strategy.hyperperiod
            << " virtual s\n"
            << "ring repairs:      " << r.stats.ring_repairs << "\n";
  report(r.scheme, csv);
  return 0;
}

/// Default hadfl_node location: same directory as this binary.
std::string sibling_node_binary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "hadfl_node";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "hadfl_node";
  return path.substr(0, slash + 1) + "hadfl_node";
}

/// Prints the rt-flavoured result block shared by the rt and net backends;
/// returns 0 (the process exit code).
int report_rt_result(const rt::RtResult& r, const std::string& backend_line,
                     std::size_t num_devices, const std::string& csv,
                     const std::string& trace_out,
                     const std::string& metrics_out, bool telemetry) {
  std::cout << "backend:           " << backend_line << "\n"
            << "hyperperiod:       " << r.extras.strategy.hyperperiod
            << " virtual s\n"
            << "ring repairs:      " << r.extras.ring_repairs << "\n"
            << "deaths detected:   " << r.deaths_detected << "\n"
            << "wall time:         " << r.wall_seconds << " s\n";
  report(r.scheme, csv);
  if (telemetry) {
    std::cout << exp::render_time_breakdown(r.timeline, num_devices);
    if (r.spans_dropped > 0) {
      std::cout << "spans dropped:     " << r.spans_dropped
                << " (raise RtConfig::telemetry_span_capacity)\n";
    }
    if (!trace_out.empty()) {
      obs::write_chrome_trace(trace_out, r.timeline.spans());
      std::cout << "trace written to:  " << trace_out
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (!metrics_out.empty()) {
      r.metrics.write_csv(metrics_out);
      std::cout << "metrics written:   " << metrics_out << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.has("help")) {
      print_usage();
      return 0;
    }
    const auto unknown = args.unknown_options(kKnownOptions);
    if (!unknown.empty()) {
      std::cerr << "unknown option --" << unknown.front() << "\n";
      print_usage();
      return 2;
    }
    if (args.has("verbose")) set_log_level(LogLevel::kInfo);

    const std::string scheme = args.get("scheme", "hadfl");
    const std::string csv = args.get("csv", "");
    const std::string trace_out = args.get("trace-out", "");
    const std::string metrics_out = args.get("metrics-out", "");
    const std::string backend = args.get("backend", "sim");
    const std::string transport = args.get("transport", "tcp");
    const std::string flag_error = exp::backend_flag_error(
        scheme, backend, args.has("transport"), transport);
    if (!flag_error.empty()) {
      std::cerr << flag_error << "\n";
      return 2;
    }
    const std::string codec_error = exp::sync_codec_flag_error(
        exp::sync_codec_arg(args), args.get_double("topk-ratio", 0.05));
    if (!codec_error.empty()) {
      std::cerr << codec_error << "\n";
      return 2;
    }
    if ((!trace_out.empty() || !metrics_out.empty()) && scheme != "hadfl") {
      std::cerr << "--trace-out/--metrics-out only apply to --scheme=hadfl\n";
      return 2;
    }
    const std::string fleet_error = exp::fleet_flag_error(args);
    if (!fleet_error.empty()) {
      std::cerr << fleet_error << "\n";
      return 2;
    }
    const std::string adaptive_error = exp::adaptive_flag_error(args);
    if (!adaptive_error.empty()) {
      std::cerr << adaptive_error << "\n";
      return 2;
    }
    if (args.has("drift") && scheme != "hadfl") {
      std::cerr << "--drift only applies to --scheme=hadfl\n";
      return 2;
    }
    if (args.has("fleet")) {
      if (args.has("drift")) {
        std::cerr << "--drift does not apply to --fleet\n";
        return 2;
      }
      if (scheme != "hadfl" || backend != "sim") {
        std::cerr << "--fleet requires --scheme=hadfl --backend=sim\n";
        return 2;
      }
      if (!metrics_out.empty()) {
        std::cerr << "--metrics-out does not apply to --fleet\n";
        return 2;
      }
      return run_fleet(args, csv, trace_out);
    }

    exp::RunSetup setup = exp::make_run_setup(args);
    exp::Scenario& s = setup.scenario;
    const fl::SchemeContext ctx = setup.context();
    // Speed-drift injection: all three backends read budget drift from the
    // coordinator-side cluster fault schedule, so one scheduling site
    // covers sim, rt, and net (workers never consult it).
    for (const sim::DriftEvent& event :
         exp::parse_drift(args.get("drift", ""), s.num_devices())) {
      ctx.cluster.faults().schedule_drift(event);
    }

    std::cout << "== hadfl_run: " << scheme << " on " << s.name << " ==\n";
    if (scheme == "hadfl" && backend == "rt") {
      rt::RtConfig rt_config = exp::make_rt_config(args, s);
      rt_config.telemetry = !trace_out.empty() || !metrics_out.empty();
      const rt::RtResult r = rt::run_hadfl_rt(ctx, rt_config);
      return report_rt_result(r, "rt (real threads)", s.num_devices(), csv,
                              trace_out, metrics_out, rt_config.telemetry);
    } else if (scheme == "hadfl" && backend == "net") {
      net::NetRunConfig net_config;
      net_config.rt = exp::make_rt_config(args, s);
      net_config.rt.telemetry = !trace_out.empty() || !metrics_out.empty();
      net_config.kind = transport == "uds" ? net::TransportKind::kUds
                                           : net::TransportKind::kTcp;
      net_config.node_binary =
          args.get("node-binary", sibling_node_binary());
      net_config.node_args = exp::scenario_forward_args(args);
      const rt::RtResult r = net::run_hadfl_net(ctx, net_config);
      return report_rt_result(
          r, "net (" + std::to_string(s.num_devices()) + " processes, " +
                 transport + ")",
          s.num_devices(), csv, trace_out, metrics_out,
          net_config.rt.telemetry);
    } else if (scheme == "hadfl") {
      sim::TraceRecorder trace;
      if (!trace_out.empty()) s.hadfl.trace = &trace;
      if (!metrics_out.empty()) {
        std::cerr << "--metrics-out requires --backend=rt|net; ignoring\n";
      }
      const core::HadflResult r = core::run_hadfl(ctx, s.hadfl);
      std::cout << "hyperperiod:       " << r.extras.strategy.hyperperiod
                << " virtual s\n"
                << "ring repairs:      " << r.extras.ring_repairs << "\n";
      report(r.scheme, csv);
      if (!trace_out.empty()) {
        std::cout << exp::render_time_breakdown(trace, s.num_devices());
        obs::write_chrome_trace(trace_out, trace.spans());
        std::cout << "trace written to:  " << trace_out
                  << " (load in chrome://tracing or ui.perfetto.dev)\n";
      }
    } else if (scheme == "distributed") {
      report(baselines::run_distributed(ctx), csv);
    } else if (scheme == "dfedavg") {
      report(baselines::run_decentralized_fedavg(ctx), csv);
    } else if (scheme == "central") {
      const auto r = baselines::run_central_fedavg(ctx);
      report(r.scheme, csv);
      std::cout << "server traffic:    "
                << static_cast<double>(r.server_bytes) / (1024.0 * 1024.0)
                << " MB\n";
    } else if (scheme == "async") {
      const auto r = baselines::run_async_fedavg(ctx);
      report(r.scheme, csv);
      std::cout << "mean staleness:    " << r.mean_staleness << "\n";
    } else {
      std::cerr << "unknown --scheme: " << scheme << "\n";
      print_usage();
      return 2;
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
