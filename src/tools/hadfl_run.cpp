// hadfl_run — command-line driver for the HADFL framework.
//
// Runs any training scheme on a configurable heterogeneous cluster and
// prints a convergence summary; optionally dumps the full convergence
// series as CSV.
//
// Examples:
//   hadfl_run --scheme=hadfl --model=resnet18 --ratio=4,2,2,1
//   hadfl_run --scheme=dfedavg --model=mlp --epochs=10 --csv=curve.csv
//   hadfl_run --scheme=hadfl --policy=bandwidth-aware --network=wan
//             --partition=dirichlet:0.3 --np=3 --tsync=2
//
// Options (defaults in brackets):
//   --scheme=hadfl|distributed|dfedavg|central|async   [hadfl]
//   --backend=sim|rt        hadfl execution backend    [sim]
//                           (rt = one real thread per device; see
//                           docs/RUNTIME.md)
//   --time-scale=<float>    rt: wall s per virtual network s   [0]
//   --throttle=<float>      rt: wall s per virtual compute s   [0]
//   --wallclock             rt: measure epoch times on the real clock
//   --die=<dev:round:step>  rt: inject a device death mid-round
//   --sync-chunks=<int>     rt: pipelined-sync chunk count     [0 = default]
//   --int8-broadcast        rt: ship broadcast chunks int8-quantized
//   --model=mlp|resnet18|vgg16                         [mlp]
//   --ratio=<comma powers>                             [3,3,1,1]
//   --epochs=<int>          total training epochs      [16]
//   --scale=<float>         dataset scale              [1.0]
//   --seed=<int>                                       [7]
//   --np=<int>              HADFL N_p                  [2]
//   --tsync=<int>           HADFL T_sync               [1]
//   --policy=<name>         HADFL selection policy     [gaussian-quartile]
//   --mix=<float>           HADFL broadcast mix weight [0.8]
//   --group-size=<int>      HADFL hierarchical groups  [0 = flat]
//   --partition=iid|dirichlet:<alpha>|shards:<n>       [iid]
//   --network=pcie|wan                                 [pcie]
//   --jitter=<float>        compute jitter sigma       [0]
//   --csv=<path>            write the convergence series
//   --trace-out=<path>      write a Chrome/Perfetto trace of the run
//                           (hadfl scheme; sim and rt backends) and print
//                           the per-device time breakdown
//   --metrics-out=<path>    rt: write the telemetry counters/histograms CSV
//   --verbose               info-level logging
#include <cstdio>
#include <iostream>

#include "baselines/async_fedavg.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/trainer.hpp"
#include "obs/export.hpp"
#include "rt/runner.hpp"
#include "data/partition.hpp"
#include "exp/report.hpp"

using namespace hadfl;

namespace {

const std::vector<std::string> kKnownOptions{
    "scheme", "model", "ratio",  "epochs",     "scale", "seed",
    "np",     "tsync", "policy", "mix",        "group-size",
    "partition", "network", "jitter", "csv",   "verbose", "help",
    "backend", "time-scale", "throttle", "wallclock", "die",
    "sync-chunks", "int8-broadcast", "trace-out", "metrics-out"};

nn::Architecture parse_model(const std::string& name) {
  if (name == "mlp") return nn::Architecture::kMlp;
  if (name == "resnet18") return nn::Architecture::kResNet18Lite;
  if (name == "vgg16") return nn::Architecture::kVgg16Lite;
  throw InvalidArgument("unknown --model: " + name);
}

data::Partition parse_partition(const std::string& spec,
                                const data::Dataset& train,
                                std::size_t devices, Rng& rng) {
  if (spec == "iid") return data::partition_iid(train, devices, rng);
  if (spec.rfind("dirichlet:", 0) == 0) {
    const double alpha = std::atof(spec.c_str() + 10);
    return data::partition_dirichlet(train, devices, alpha, rng);
  }
  if (spec.rfind("shards:", 0) == 0) {
    const int shards = std::atoi(spec.c_str() + 7);
    return data::partition_shards(train, devices,
                                  static_cast<std::size_t>(shards), rng);
  }
  throw InvalidArgument("unknown --partition: " + spec);
}

void print_usage() {
  std::cout <<
      "usage: hadfl_run [--scheme=hadfl|distributed|dfedavg|central|async]\n"
      "                 [--model=mlp|resnet18|vgg16] [--ratio=3,3,1,1]\n"
      "                 [--epochs=N] [--scale=S] [--seed=N] [--np=N]\n"
      "                 [--tsync=N] [--policy=NAME] [--mix=W]\n"
      "                 [--group-size=N] [--partition=iid|dirichlet:A|"
      "shards:N]\n"
      "                 [--network=pcie|wan] [--jitter=S] [--csv=PATH]\n"
      "                 [--backend=sim|rt] [--time-scale=S] [--throttle=S]\n"
      "                 [--wallclock] [--die=DEV:ROUND:STEP]\n"
      "                 [--sync-chunks=C] [--int8-broadcast]\n"
      "                 [--trace-out=PATH] [--metrics-out=PATH] [--verbose]\n";
}

void report(const fl::SchemeResult& result, const std::string& csv_path) {
  const exp::SchemeSummary sum = exp::summarize(result.metrics);
  std::cout << "scheme:            " << result.scheme_name << "\n"
            << "best accuracy:     " << 100.0 * sum.best_accuracy << "%\n"
            << "time to best:      " << sum.time_to_best << " virtual s\n"
            << "total time:        " << result.total_time << " virtual s\n"
            << "sync rounds:       " << result.sync_rounds << "\n"
            << "device comm:       "
            << static_cast<double>(result.volume.total_sent() +
                                   result.volume.total_received()) /
                   (1024.0 * 1024.0)
            << " MB\n";
  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"series", "epoch", "time", "train_loss",
                             "test_loss", "test_acc"});
    result.metrics.append_csv_rows(csv, result.scheme_name);
    std::cout << "curve written to:  " << csv_path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.has("help")) {
      print_usage();
      return 0;
    }
    const auto unknown = args.unknown_options(kKnownOptions);
    if (!unknown.empty()) {
      std::cerr << "unknown option --" << unknown.front() << "\n";
      print_usage();
      return 2;
    }
    if (args.has("verbose")) set_log_level(LogLevel::kInfo);

    exp::Scenario s = exp::paper_scenario(
        parse_model(args.get("model", "mlp")),
        args.get_double_list("ratio", {3, 3, 1, 1}),
        args.get_double("scale", 1.0),
        static_cast<std::uint64_t>(args.get_int("seed", 7)));
    s.train.total_epochs = args.get_int("epochs", 16);
    s.jitter_std = args.get_double("jitter", 0.0);
    s.hadfl.strategy.select_count =
        static_cast<std::size_t>(args.get_int("np", 2));
    s.hadfl.strategy.t_sync = args.get_int("tsync", 1);
    s.hadfl.broadcast_mix_weight = args.get_double("mix", 0.8);
    s.hadfl.policy =
        core::make_selection_policy(args.get("policy", "gaussian-quartile"));
    const int group_size = args.get_int("group-size", 0);
    if (group_size > 0) {
      s.hadfl.grouping.group_size = static_cast<std::size_t>(group_size);
    }
    if (args.get("network", "pcie") == "wan") {
      s.network = sim::NetworkModel::wan();
    }

    exp::Environment env(s);
    Rng part_rng(s.train.seed ^ 0x5151u);
    const data::Partition partition = parse_partition(
        args.get("partition", "iid"), env.train(), s.num_devices(), part_rng);
    const fl::SchemeContext base = env.context();
    const fl::SchemeContext ctx{base.cluster, base.network,     base.train,
                                base.test,    partition,        base.make_model,
                                base.config,  base.comm_state_bytes};

    const std::string scheme = args.get("scheme", "hadfl");
    const std::string csv = args.get("csv", "");
    const std::string trace_out = args.get("trace-out", "");
    const std::string metrics_out = args.get("metrics-out", "");
    if ((!trace_out.empty() || !metrics_out.empty()) && scheme != "hadfl") {
      std::cerr << "--trace-out/--metrics-out only apply to --scheme=hadfl\n";
      return 2;
    }
    std::cout << "== hadfl_run: " << scheme << " on " << s.name << " ==\n";
    const std::string backend = args.get("backend", "sim");
    if (backend != "sim" && backend != "rt") {
      std::cerr << "unknown --backend: " << backend << "\n";
      print_usage();
      return 2;
    }
    if (backend == "rt" && scheme != "hadfl") {
      std::cerr << "--backend=rt only applies to --scheme=hadfl\n";
      return 2;
    }
    if (scheme == "hadfl" && backend == "rt") {
      rt::RtConfig rt_config;
      rt_config.hadfl = s.hadfl;
      rt_config.timing = args.has("wallclock") ? rt::TimingMode::kWallclock
                                               : rt::TimingMode::kVirtual;
      rt_config.time_scale = args.get_double("time-scale", 0.0);
      rt_config.compute_throttle = args.get_double("throttle", 0.0);
      rt_config.sync_chunks =
          static_cast<std::size_t>(args.get_int("sync-chunks", 0));
      rt_config.int8_broadcast = args.has("int8-broadcast");
      const std::string die = args.get("die", "");
      if (!die.empty()) {
        rt::FaultPlan plan;
        if (std::sscanf(die.c_str(), "%zu:%zu:%zu", &plan.device, &plan.round,
                        &plan.after_steps) != 3) {
          std::cerr << "bad --die spec (want DEV:ROUND:STEP): " << die << "\n";
          return 2;
        }
        if (plan.device >= s.num_devices()) {
          std::cerr << "--die device " << plan.device
                    << " out of range (cluster has " << s.num_devices()
                    << " devices)\n";
          return 2;
        }
        rt_config.faults.push_back(plan);
      }
      rt_config.telemetry = !trace_out.empty() || !metrics_out.empty();
      const rt::RtResult r = rt::run_hadfl_rt(ctx, rt_config);
      std::cout << "backend:           rt (real threads)\n"
                << "hyperperiod:       " << r.extras.strategy.hyperperiod
                << " virtual s\n"
                << "ring repairs:      " << r.extras.ring_repairs << "\n"
                << "deaths detected:   " << r.deaths_detected << "\n"
                << "wall time:         " << r.wall_seconds << " s\n";
      report(r.scheme, csv);
      if (rt_config.telemetry) {
        std::cout << exp::render_time_breakdown(r.timeline, s.num_devices());
        if (r.spans_dropped > 0) {
          std::cout << "spans dropped:     " << r.spans_dropped
                    << " (raise RtConfig::telemetry_span_capacity)\n";
        }
        if (!trace_out.empty()) {
          obs::write_chrome_trace(trace_out, r.timeline.spans());
          std::cout << "trace written to:  " << trace_out
                    << " (load in chrome://tracing or ui.perfetto.dev)\n";
        }
        if (!metrics_out.empty()) {
          r.metrics.write_csv(metrics_out);
          std::cout << "metrics written:   " << metrics_out << "\n";
        }
      }
    } else if (scheme == "hadfl") {
      sim::TraceRecorder trace;
      if (!trace_out.empty()) s.hadfl.trace = &trace;
      if (!metrics_out.empty()) {
        std::cerr << "--metrics-out requires --backend=rt; ignoring\n";
      }
      const core::HadflResult r = core::run_hadfl(ctx, s.hadfl);
      std::cout << "hyperperiod:       " << r.extras.strategy.hyperperiod
                << " virtual s\n"
                << "ring repairs:      " << r.extras.ring_repairs << "\n";
      report(r.scheme, csv);
      if (!trace_out.empty()) {
        std::cout << exp::render_time_breakdown(trace, s.num_devices());
        obs::write_chrome_trace(trace_out, trace.spans());
        std::cout << "trace written to:  " << trace_out
                  << " (load in chrome://tracing or ui.perfetto.dev)\n";
      }
    } else if (scheme == "distributed") {
      report(baselines::run_distributed(ctx), csv);
    } else if (scheme == "dfedavg") {
      report(baselines::run_decentralized_fedavg(ctx), csv);
    } else if (scheme == "central") {
      const auto r = baselines::run_central_fedavg(ctx);
      report(r.scheme, csv);
      std::cout << "server traffic:    "
                << static_cast<double>(r.server_bytes) / (1024.0 * 1024.0)
                << " MB\n";
    } else if (scheme == "async") {
      const auto r = baselines::run_async_fedavg(ctx);
      report(r.scheme, csv);
      std::cout << "mean staleness:    " << r.mean_staleness << "\n";
    } else {
      std::cerr << "unknown --scheme: " << scheme << "\n";
      print_usage();
      return 2;
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
