// Compressed delta exchange for the chunk-pipelined sync path.
//
// HADFL's ring sync ships each member's model once per round; PR 4 made
// that bandwidth-optimal in *elements* (2(K-1)/K·M), so bytes-per-element
// is the remaining lever. This layer generalizes the PR 4 broadcast-only
// int8 wire format to the whole collective: members exchange codec-encoded
// *deltas* against a shared round reference (CHOCO-SGD style), and a
// per-device error-feedback accumulator carries the residual
// `x - decode(encode(x))` into the next round so convergence is preserved.
//
// Everything here is backend-neutral chunk arithmetic shared by the
// simulator (src/core/trainer.cpp), the threaded runtime
// (src/rt/collectives.cpp) and the socket backend (src/net/) — the three
// must produce bit-identical decoded values and agree on the priced wire
// size, so both live in exactly one place.
//
// Chunk payload formats (float-slot packed, because rt transports ship
// std::vector<float> payloads):
//
//   int8   payload[0]           reconstruction scale (value*scale)
//          payload[1..]         int8 values, 4 per float slot
//   top-k  payload[0]           kept-entry count k (bit-cast u32)
//          payload[1..k]        entry indices (bit-cast u32, ascending)
//          payload[k+1..2k]     entry values
//
// Both decoders are pure functions of the payload bytes: re-decoding a
// stored payload reproduces the receiver-side values bit-exactly. (The
// reverse is NOT true — re-encoding a decoded chunk drifts by an ulp in
// the int8 scale — which is why the rt broadcast re-ships the original
// encodings instead of re-encoding the folded delta.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hadfl::comm {

/// Codec applied to sync-path chunk exchange. `kNone` is the exact dense
/// path and is pinned bit-identical to the pre-codec runtime.
enum class SyncCodec : std::uint8_t {
  kNone = 0,
  kInt8 = 1,  ///< uniform int8 quantization, ~4x smaller
  kTopK = 2,  ///< top-k sparsification of the delta, ~1/ratio smaller
};

/// Per-device error-feedback accumulator (residual memory). The encoder
/// stages `e' = u - decode(encode(u))` while a collective is in flight;
/// the residual only becomes visible to the next round's update when the
/// collective *commits* — an aborted attempt leaves `residual` untouched,
/// which keeps retries deterministic across the sim and rt backends.
struct ErrorFeedback {
  std::vector<float> residual;  ///< committed residual, added to next update
  std::vector<float> staged;    ///< residual of the in-flight encode

  /// Sizes both buffers for an `n`-element state (residual keeps its
  /// values when already sized; a size change zeroes it).
  void ensure(std::size_t n) {
    if (residual.size() != n) residual.assign(n, 0.0f);
    if (staged.size() != n) staged.assign(n, 0.0f);
  }
  /// Makes the staged residual the committed one (successful delta sync).
  void commit() { residual.swap(staged); }
  /// Drops all residual memory (a raw sync transmitted the exact state,
  /// so there is no compression error to compensate).
  void clear() {
    residual.clear();
    staged.clear();
  }
};

/// Default pipeline depth for the chunked sync path (from the PR 4 bench
/// sweep); shared by the rt collectives and the sim's codec chunking.
inline constexpr std::size_t kDefaultSyncChunks = 16;

/// Maps the sync_chunks knob (0 = default) to an actual chunk count for an
/// `n`-element state: clamped to [1, min(n, 4096)].
std::size_t resolve_chunk_count(std::size_t chunks, std::size_t n);

/// Float slots an int8-encoded chunk of `n` values occupies on the wire.
constexpr std::size_t int8_payload_floats(std::size_t n) {
  return 1 + (n + sizeof(float) - 1) / sizeof(float);
}

/// Entries kept by top-k for an `n`-value chunk: ceil(ratio*n), at least 1,
/// at most n (0 for an empty chunk). `ratio` must be in (0, 1].
std::size_t topk_keep_count(double ratio, std::size_t n);

/// Float slots a top-k-encoded chunk with `k` kept entries occupies.
constexpr std::size_t topk_payload_floats(std::size_t k) { return 1 + 2 * k; }

/// Float slots codec `codec` uses for an `n`-value chunk (`n` for kNone).
std::size_t encoded_chunk_floats(SyncCodec codec, std::size_t n,
                                 double topk_ratio);

/// Bytes codec `codec` puts on the wire for an `n`-value chunk — the
/// payload-slot count times sizeof(float). Data-independent by design so
/// the sim, rt and net backends can price traffic without encoding.
inline std::size_t encoded_chunk_bytes(SyncCodec codec, std::size_t n,
                                       double topk_ratio) {
  return encoded_chunk_floats(codec, n, topk_ratio) * sizeof(float);
}

/// Total encoded bytes for an `n`-element state split into `chunks` pieces
/// (0 = default) — the Σ over per-chunk encoded_chunk_bytes.
std::size_t encoded_state_bytes(SyncCodec codec, std::size_t n,
                                std::size_t chunks, double topk_ratio);

/// Quantizes `chunk` into `payload` (sized int8_payload_floats(chunk.size())).
/// Bit-identical to quantize_int8: scale = max|x|/127, values rounded and
/// clamped to [-127, 127]; an all-zero chunk encodes losslessly (scale 0).
void encode_int8_chunk(std::span<const float> chunk, std::span<float> payload);

/// Inverse of encode_int8_chunk into `dst` (the chunk's element count).
void decode_int8_chunk(std::span<const float> payload, std::span<float> dst);

/// Sparsifies `chunk` keeping its topk_keep_count(ratio, n) largest-
/// magnitude entries, into `payload` (sized topk_payload_floats(k)).
/// Ties resolve to the lowest index; indices are stored ascending.
void encode_topk_chunk(std::span<const float> chunk, double ratio,
                       std::span<float> payload);

/// Inverse of encode_topk_chunk into `dst`; missing entries become zero.
/// Rejects payloads whose count or indices do not fit `dst`.
void decode_topk_chunk(std::span<const float> payload, std::span<float> dst);

/// Encodes one chunk with `codec` into `payload` (kNone copies densely).
/// `payload` must be sized encoded_chunk_floats(codec, chunk.size(), ratio).
void encode_chunk(SyncCodec codec, std::span<const float> chunk, double ratio,
                  std::span<float> payload);

/// Decodes one chunk with `codec` from `payload` into `dst`.
void decode_chunk(SyncCodec codec, std::span<const float> payload,
                  std::span<float> dst);

/// Forms the delta-round update in place: u[i] = u[i] - ref[i] +
/// residual[i]. `u` enters holding the device's current state x and leaves
/// holding the error-compensated delta against the shared reference. Both
/// backends call this exact function so the arithmetic order is identical.
void form_delta_update(std::span<float> u, std::span<const float> ref,
                       std::span<const float> residual);

/// One member-side chunk step of a delta round: encodes `chunk` (a slice
/// of the update u) into `payload`, decodes the payload back over `chunk`
/// (peers fold exactly what the wire delivers), and stages the residual
/// u - decoded into `staged` for the error-feedback commit.
void roundtrip_chunk_staged(SyncCodec codec, double ratio,
                            std::span<float> chunk, std::span<float> staged,
                            std::span<float> payload);

/// The owner-side phase-2 step: encodes the folded delta chunk into
/// `payload` and decodes it back over `chunk`. Every ring member decodes
/// this same payload, so the value committed everywhere is its decode.
void roundtrip_folded_chunk(SyncCodec codec, double ratio,
                            std::span<float> chunk, std::span<float> payload);

}  // namespace hadfl::comm
