// Lossy model-update compression codecs — the standard communication-
// reduction tools of the FL literature, provided as an optional layer under
// HADFL's synchronization (the paper reduces *frequency* and *topology* of
// communication; codecs reduce the *bytes per message* and compose with
// both):
//
//  * Uniform int8 quantization: each float becomes one byte plus a shared
//    per-message scale — 4x smaller, bounded elementwise error.
//  * Top-k sparsification: only the k largest-magnitude entries travel
//    (index + value pairs); the receiver treats missing entries as zero.
//    Standard practice sends the *delta* from a shared reference so zeros
//    are meaningful; helpers for that are included.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hadfl::comm {

/// A quantized message: int8 payload + the reconstruction scale.
struct QuantizedState {
  std::vector<std::int8_t> values;
  float scale = 0.0f;  ///< dequantized = value * scale

  std::size_t wire_bytes() const {
    return values.size() * sizeof(std::int8_t) + sizeof(float);
  }
};

/// Symmetric uniform quantization to int8 ([-127, 127]); scale is
/// max|x| / 127. An all-zero input quantizes losslessly.
QuantizedState quantize_int8(std::span<const float> state);

/// Reconstructs floats from a quantized message.
std::vector<float> dequantize_int8(const QuantizedState& q);

/// A sparse message: (index, value) pairs of the k largest-magnitude
/// entries, plus the dense length for reconstruction.
struct SparseState {
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
  std::size_t dense_size = 0;

  std::size_t wire_bytes() const {
    return indices.size() * sizeof(std::uint32_t) +
           values.size() * sizeof(float) + sizeof(std::uint64_t);
  }
};

/// Keeps the k largest-magnitude entries (k is clamped to the input size).
SparseState sparsify_top_k(std::span<const float> state, std::size_t k);

/// Densifies; missing entries are zero.
std::vector<float> densify(const SparseState& s);

/// Round-trips `state` through int8 quantization in place and reports the
/// wire size — the one-call form used by a training loop that wants the
/// receiver to see exactly what the codec delivers.
std::size_t apply_int8_roundtrip(std::span<float> state);

/// Round-trips the *delta from `reference`* through top-k: the result is
/// reference + top_k(state - reference). Returns the wire size.
std::size_t apply_top_k_roundtrip(std::span<float> state,
                                  std::span<const float> reference,
                                  double keep_ratio);

}  // namespace hadfl::comm
