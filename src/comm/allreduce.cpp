#include "comm/allreduce.hpp"

#include "common/error.hpp"

namespace hadfl::comm {

SimTime ring_allreduce_duration(const sim::NetworkModel& network,
                                std::size_t participants,
                                std::size_t buffer_bytes) {
  HADFL_CHECK_ARG(participants > 0, "all-reduce needs participants");
  if (participants == 1) return 0.0;
  const std::size_t chunk = (buffer_bytes + participants - 1) / participants;
  const double steps = 2.0 * static_cast<double>(participants - 1);
  return steps * network.transfer_time(chunk);
}

namespace {

/// Ring-schedule duration honouring per-device link speeds: each of the
/// 2(K-1) steps completes when the *slowest ring link* finishes its chunk.
SimTime ring_duration_on_links(const SimTransport& transport,
                               const std::vector<DeviceId>& participants,
                               std::size_t bytes) {
  const std::size_t k = participants.size();
  if (k <= 1) return 0.0;
  const std::size_t chunk = (bytes + k - 1) / k;
  SimTime slowest_link = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    slowest_link = std::max(
        slowest_link,
        transport.link_time(participants[i], participants[(i + 1) % k],
                            chunk));
  }
  return 2.0 * static_cast<double>(k - 1) * slowest_link;
}

}  // namespace

SimTime simulate_ring_allreduce(SimTransport& transport,
                                const std::vector<DeviceId>& participants,
                                std::size_t bytes) {
  HADFL_CHECK_ARG(!participants.empty(), "all-reduce needs participants");
  sim::Cluster& cluster = transport.cluster();
  SimTime start = 0.0;
  for (DeviceId id : participants) start = std::max(start, cluster.time(id));
  for (DeviceId id : participants) {
    if (!cluster.faults().alive(id, start)) {
      throw CommError("ring_allreduce: device " + std::to_string(id) +
                      " is down");
    }
    cluster.advance_to(id, start);
  }
  const std::size_t k = participants.size();
  if (k > 1 && bytes > 0) {
    const std::size_t chunk_bytes = (bytes + k - 1) / k;
    for (std::size_t i = 0; i < k; ++i) {
      transport.account(participants[i], participants[(i + 1) % k],
                        2 * (k - 1) * chunk_bytes);
    }
  }
  const SimTime done =
      start + ring_duration_on_links(transport, participants, bytes);
  for (DeviceId id : participants) cluster.advance_to(id, done);
  return done;
}

SimTime ring_allreduce_average(SimTransport& transport,
                               const std::vector<DeviceId>& participants,
                               std::vector<std::span<float>> buffers) {
  HADFL_CHECK_ARG(!participants.empty(), "all-reduce needs participants");
  HADFL_CHECK_ARG(participants.size() == buffers.size(),
                  "participant/buffer count mismatch");
  const std::size_t k = participants.size();
  const std::size_t n = buffers.front().size();
  for (const auto& b : buffers) {
    HADFL_CHECK_SHAPE(b.size() == n, "all-reduce buffer size mismatch");
  }

  sim::Cluster& cluster = transport.cluster();
  // Synchronous collective: everyone starts when the slowest arrives.
  SimTime start = 0.0;
  for (DeviceId id : participants) start = std::max(start, cluster.time(id));
  for (DeviceId id : participants) {
    if (!cluster.faults().alive(id, start)) {
      throw CommError("ring_allreduce: device " + std::to_string(id) +
                      " is down");
    }
    cluster.advance_to(id, start);
  }

  if (k > 1 && n > 0) {
    // Each device forwards 2(K-1) chunks of ceil(N/K) elements to its ring
    // successor. The transfers of one step share no link, so the clocks are
    // advanced once per collective (below), not per message.
    const std::size_t chunk_bytes = ((n + k - 1) / k) * sizeof(float);
    for (std::size_t i = 0; i < k; ++i) {
      transport.account(participants[i], participants[(i + 1) % k],
                        2 * (k - 1) * chunk_bytes);
    }
  }

  // Elementwise mean applied exactly (double accumulation for stability).
  if (n > 0) {
    std::vector<double> acc(n, 0.0);
    for (const auto& b : buffers) {
      for (std::size_t i = 0; i < n; ++i) acc[i] += b[i];
    }
    const double inv = 1.0 / static_cast<double>(k);
    for (auto& b : buffers) {
      for (std::size_t i = 0; i < n; ++i) {
        b[i] = static_cast<float>(acc[i] * inv);
      }
    }
  }

  const SimTime done =
      start + ring_duration_on_links(transport, participants,
                                     n * sizeof(float));
  for (DeviceId id : participants) cluster.advance_to(id, done);
  return done;
}

}  // namespace hadfl::comm
