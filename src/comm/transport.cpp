#include "comm/transport.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace hadfl::comm {

std::size_t VolumeCounters::total_sent() const {
  return std::accumulate(sent.begin(), sent.end(), std::size_t{0});
}

std::size_t VolumeCounters::total_received() const {
  return std::accumulate(received.begin(), received.end(), std::size_t{0});
}

SimTransport::SimTransport(sim::Cluster& cluster, sim::NetworkModel network)
    : cluster_(&cluster), network_(network) {
  volume_.sent.assign(cluster.size(), 0);
  volume_.received.assign(cluster.size(), 0);
}

void SimTransport::check_device(DeviceId id) const {
  HADFL_CHECK_ARG(id < cluster_->size(), "device id " << id << " out of range");
}

SimTime SimTransport::link_time(DeviceId src, DeviceId dst,
                                std::size_t bytes) const {
  check_device(src);
  check_device(dst);
  const double scale = std::min(cluster_->bandwidth_scale(src),
                                cluster_->bandwidth_scale(dst));
  return network_.latency +
         static_cast<double>(bytes) / (network_.bandwidth * scale);
}

SimTime SimTransport::send(DeviceId src, DeviceId dst, std::size_t bytes) {
  check_device(src);
  check_device(dst);
  HADFL_CHECK_ARG(src != dst, "send to self");
  const SimTime start = std::max(cluster_->time(src), cluster_->time(dst));
  if (!cluster_->faults().alive(src, start)) {
    throw CommError("send: source device " + std::to_string(src) +
                    " is down");
  }
  if (!cluster_->faults().alive(dst, start)) {
    throw CommError("send: destination device " + std::to_string(dst) +
                    " is down");
  }
  const SimTime done = start + link_time(src, dst, bytes);
  cluster_->advance_to(src, done);
  cluster_->advance_to(dst, done);
  volume_.sent[src] += bytes;
  volume_.received[dst] += bytes;
  return done;
}

SimTime SimTransport::send_nonblocking(DeviceId src, DeviceId dst,
                                       std::size_t bytes) {
  check_device(src);
  check_device(dst);
  HADFL_CHECK_ARG(src != dst, "send to self");
  const SimTime depart = cluster_->time(src);
  if (!cluster_->faults().alive(src, depart)) {
    throw CommError("send_nonblocking: source device " + std::to_string(src) +
                    " is down");
  }
  volume_.sent[src] += bytes;
  const SimTime arrival = depart + link_time(src, dst, bytes);
  if (!cluster_->faults().alive(dst, arrival)) {
    throw CommError("send_nonblocking: destination device " +
                    std::to_string(dst) + " is down");
  }
  cluster_->advance_to(dst, arrival);
  volume_.received[dst] += bytes;
  return arrival;
}

SimTransport::FanoutResult SimTransport::send_fanout(
    DeviceId src, const std::vector<DeviceId>& dsts, std::size_t bytes,
    std::size_t threads) {
  check_device(src);
  const SimTime depart = cluster_->time(src);
  if (!cluster_->faults().alive(src, depart)) {
    throw CommError("send_nonblocking: source device " + std::to_string(src) +
                    " is down");
  }
  // Fixed grain keeps the range grid (and thus the merged result) a pure
  // function of dsts.size(), never of the thread count.
  constexpr std::size_t kFanoutGrain = std::size_t{1} << 14;
  const std::size_t n = dsts.size();
  const std::size_t ranges = (n + kFanoutGrain - 1) / kFanoutGrain;
  std::vector<std::vector<DeviceId>> delivered(ranges);
  std::vector<std::vector<DeviceId>> unreachable(ranges);
  std::vector<SimTime> last_arrivals(ranges, 0.0);
  const sim::FaultInjector& faults = cluster_->faults();
  parallel_chunks(
      n, kFanoutGrain, threads, [&](std::size_t begin, std::size_t end) {
        const std::size_t r = begin / kFanoutGrain;
        for (std::size_t i = begin; i < end; ++i) {
          const DeviceId dst = dsts[i];
          check_device(dst);
          HADFL_CHECK_ARG(dst != src, "broadcast destination equals source");
          const SimTime arrival = depart + link_time(src, dst, bytes);
          if (!faults.alive(dst, arrival)) {
            unreachable[r].push_back(dst);
            continue;
          }
          // Distinct destinations ⇒ disjoint clock slots and volume
          // counters; the global max clock is folded back in afterwards.
          cluster_->advance_to_unsynced(dst, arrival);
          volume_.received[dst] += bytes;
          delivered[r].push_back(dst);
          last_arrivals[r] = std::max(last_arrivals[r], arrival);
        }
      });
  // A dead receiver still consumes the send: volume counts at the sender
  // for every destination, exactly as the serial per-dst loop accumulates.
  volume_.sent[src] += bytes * n;
  FanoutResult out;
  for (std::size_t r = 0; r < ranges; ++r) {
    out.delivered.insert(out.delivered.end(), delivered[r].begin(),
                         delivered[r].end());
    out.unreachable.insert(out.unreachable.end(), unreachable[r].begin(),
                           unreachable[r].end());
    out.last_arrival = std::max(out.last_arrival, last_arrivals[r]);
  }
  cluster_->note_clock(out.last_arrival);
  return out;
}

bool SimTransport::handshake(DeviceId src, DeviceId dst, SimTime timeout) {
  check_device(src);
  check_device(dst);
  HADFL_CHECK_ARG(timeout >= 0.0, "handshake timeout must be non-negative");
  const SimTime start = cluster_->time(src);
  const SimTime ping_arrival = start + network_.latency;
  if (cluster_->faults().alive(dst, ping_arrival)) {
    cluster_->advance(src, 2.0 * network_.latency);
    return true;
  }
  HADFL_DEBUG("handshake from dev" << src << " to dev" << dst
                                   << " timed out after " << timeout << "s");
  cluster_->advance(src, timeout);
  return false;
}

void SimTransport::account(DeviceId src, DeviceId dst, std::size_t bytes) {
  check_device(src);
  check_device(dst);
  volume_.sent[src] += bytes;
  volume_.received[dst] += bytes;
}

void SimTransport::account_external(DeviceId device, std::size_t sent_bytes,
                                    std::size_t received_bytes) {
  check_device(device);
  volume_.sent[device] += sent_bytes;
  volume_.received[device] += received_bytes;
}

void SimTransport::reset_volume() {
  volume_.sent.assign(cluster_->size(), 0);
  volume_.received.assign(cluster_->size(), 0);
}

}  // namespace hadfl::comm
