#include "comm/delta_codec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/error.hpp"

namespace hadfl::comm {
namespace {

/// Hard ceiling on pipeline depth — beyond this the per-chunk message
/// overhead dominates (mirrors the former rt::resolve_chunk_count bound).
constexpr std::size_t kMaxSyncChunks = 4096;

}  // namespace

std::size_t resolve_chunk_count(std::size_t chunks, std::size_t n) {
  if (n == 0) return 1;
  if (chunks == 0) chunks = kDefaultSyncChunks;
  return std::clamp<std::size_t>(chunks, 1, std::min(n, kMaxSyncChunks));
}

std::size_t topk_keep_count(double ratio, std::size_t n) {
  HADFL_CHECK_ARG(ratio > 0.0 && ratio <= 1.0,
                  "topk_ratio must be in (0, 1], got " << ratio);
  if (n == 0) return 0;
  const auto k = static_cast<std::size_t>(
      std::max(1.0, std::ceil(ratio * static_cast<double>(n))));
  return std::min(k, n);
}

std::size_t encoded_chunk_floats(SyncCodec codec, std::size_t n,
                                 double topk_ratio) {
  switch (codec) {
    case SyncCodec::kNone:
      return n;
    case SyncCodec::kInt8:
      return int8_payload_floats(n);
    case SyncCodec::kTopK:
      return topk_payload_floats(topk_keep_count(topk_ratio, n));
  }
  HADFL_CHECK_ARG(false, "unknown sync codec");
  return n;
}

std::size_t encoded_state_bytes(SyncCodec codec, std::size_t n,
                                std::size_t chunks, double topk_ratio) {
  const std::size_t c_count = resolve_chunk_count(chunks, n);
  std::size_t total = 0;
  for (std::size_t c = 0; c < c_count; ++c) {
    const std::size_t begin = c * n / c_count;
    const std::size_t end = (c + 1) * n / c_count;
    total += encoded_chunk_bytes(codec, end - begin, topk_ratio);
  }
  return total;
}

void encode_int8_chunk(std::span<const float> chunk, std::span<float> payload) {
  HADFL_CHECK_ARG(payload.size() == int8_payload_floats(chunk.size()),
                  "int8 chunk payload size " << payload.size()
                                             << " != expected "
                                             << int8_payload_floats(chunk.size()));
  float max_abs = 0.0f;
  for (float v : chunk) max_abs = std::max(max_abs, std::fabs(v));
  auto* packed = reinterpret_cast<std::int8_t*>(payload.data() + 1);
  if (max_abs == 0.0f) {
    payload[0] = 0.0f;
    std::memset(packed, 0, chunk.size());
    return;
  }
  const float scale = max_abs / 127.0f;
  payload[0] = scale;
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    packed[i] = static_cast<std::int8_t>(std::clamp(
        static_cast<int>(std::lround(chunk[i] / scale)), -127, 127));
  }
}

void decode_int8_chunk(std::span<const float> payload, std::span<float> dst) {
  HADFL_CHECK_ARG(payload.size() == int8_payload_floats(dst.size()),
                  "int8 chunk payload size " << payload.size()
                                             << " != expected "
                                             << int8_payload_floats(dst.size()));
  const float scale = payload[0];
  const auto* packed = reinterpret_cast<const std::int8_t*>(payload.data() + 1);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<float>(packed[i]) * scale;
  }
}

void encode_topk_chunk(std::span<const float> chunk, double ratio,
                       std::span<float> payload) {
  const std::size_t k = topk_keep_count(ratio, chunk.size());
  HADFL_CHECK_ARG(payload.size() == topk_payload_floats(k),
                  "top-k chunk payload size " << payload.size()
                                              << " != expected "
                                              << topk_payload_floats(k));
  payload[0] = std::bit_cast<float>(static_cast<std::uint32_t>(k));
  if (k == 0) return;
  std::vector<std::uint32_t> order(chunk.size());
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float fa = std::fabs(chunk[a]);
                     const float fb = std::fabs(chunk[b]);
                     if (fa != fb) return fa > fb;
                     return a < b;  // deterministic tie-break
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());  // ascending index layout
  for (std::size_t i = 0; i < k; ++i) {
    payload[1 + i] = std::bit_cast<float>(order[i]);
    payload[1 + k + i] = chunk[order[i]];
  }
}

void decode_topk_chunk(std::span<const float> payload, std::span<float> dst) {
  HADFL_CHECK_ARG(!payload.empty(), "top-k chunk payload is empty");
  const auto k =
      static_cast<std::size_t>(std::bit_cast<std::uint32_t>(payload[0]));
  HADFL_CHECK_ARG(payload.size() == topk_payload_floats(k),
                  "top-k chunk payload size " << payload.size()
                                              << " != expected "
                                              << topk_payload_floats(k)
                                              << " for k=" << k);
  HADFL_CHECK_ARG(k <= dst.size(), "top-k kept count " << k
                                                       << " exceeds chunk size "
                                                       << dst.size());
  std::fill(dst.begin(), dst.end(), 0.0f);
  for (std::size_t i = 0; i < k; ++i) {
    const auto idx =
        static_cast<std::size_t>(std::bit_cast<std::uint32_t>(payload[1 + i]));
    HADFL_CHECK_ARG(idx < dst.size(), "top-k index " << idx
                                                     << " out of range for chunk size "
                                                     << dst.size());
    dst[idx] = payload[1 + k + i];
  }
}

void encode_chunk(SyncCodec codec, std::span<const float> chunk, double ratio,
                  std::span<float> payload) {
  switch (codec) {
    case SyncCodec::kNone:
      HADFL_CHECK_ARG(payload.size() == chunk.size(),
                      "dense chunk payload size mismatch");
      std::copy(chunk.begin(), chunk.end(), payload.begin());
      return;
    case SyncCodec::kInt8:
      encode_int8_chunk(chunk, payload);
      return;
    case SyncCodec::kTopK:
      encode_topk_chunk(chunk, ratio, payload);
      return;
  }
  HADFL_CHECK_ARG(false, "unknown sync codec");
}

void decode_chunk(SyncCodec codec, std::span<const float> payload,
                  std::span<float> dst) {
  switch (codec) {
    case SyncCodec::kNone:
      HADFL_CHECK_ARG(payload.size() == dst.size(),
                      "dense chunk payload size mismatch");
      std::copy(payload.begin(), payload.end(), dst.begin());
      return;
    case SyncCodec::kInt8:
      decode_int8_chunk(payload, dst);
      return;
    case SyncCodec::kTopK:
      decode_topk_chunk(payload, dst);
      return;
  }
  HADFL_CHECK_ARG(false, "unknown sync codec");
}

void form_delta_update(std::span<float> u, std::span<const float> ref,
                       std::span<const float> residual) {
  HADFL_CHECK_ARG(u.size() == ref.size() && u.size() == residual.size(),
                  "delta update size mismatch: " << u.size() << " vs "
                                                 << ref.size() << " vs "
                                                 << residual.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = u[i] - ref[i] + residual[i];
  }
}

void roundtrip_chunk_staged(SyncCodec codec, double ratio,
                            std::span<float> chunk, std::span<float> staged,
                            std::span<float> payload) {
  HADFL_CHECK_ARG(staged.size() == chunk.size(),
                  "staged residual chunk size mismatch");
  encode_chunk(codec, chunk, ratio, payload);
  decode_chunk(codec, payload, staged);  // staged holds the decode for now
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    const float decoded = staged[i];
    staged[i] = chunk[i] - decoded;
    chunk[i] = decoded;
  }
}

void roundtrip_folded_chunk(SyncCodec codec, double ratio,
                            std::span<float> chunk, std::span<float> payload) {
  encode_chunk(codec, chunk, ratio, payload);
  decode_chunk(codec, payload, chunk);
}

}  // namespace hadfl::comm
