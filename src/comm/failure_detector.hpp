// Fault-tolerant ring repair (paper §III-D).
//
// The protocol, per the paper's walkthrough (Fig. 2b): device `d`'s
// upstream neighbour in the directed ring goes silent during model
// synchronization. After a pre-specified waiting time, `d` sends a
// handshake to the silent device to confirm its status; on confirmation of
// death it issues a warning to the dead device's own upstream, which then
// bypasses the dead device and communicates with `d` directly.
#pragma once

#include <vector>

#include "comm/transport.hpp"

namespace hadfl::comm {

struct RingRepairConfig {
  SimTime wait_before_handshake = 0.05;  ///< "pre-specified waiting time"
  SimTime handshake_timeout = 0.01;
};

struct RingRepairResult {
  std::vector<DeviceId> ring;     ///< surviving members in ring order
  std::vector<DeviceId> removed;  ///< bypassed (dead) members
  std::size_t repairs = 0;        ///< number of bypass operations performed
};

/// Checks every ring member's liveness at its current clock and executes the
/// wait → handshake → warn-upstream → bypass protocol for each dead member.
/// The downstream neighbour pays the waiting time and handshake timeout; the
/// warning message costs one latency on the upstream link. Returns the
/// repaired ring (may be smaller; never empty unless all members died).
RingRepairResult repair_ring(SimTransport& transport,
                             const std::vector<DeviceId>& ring,
                             const RingRepairConfig& config = {});

}  // namespace hadfl::comm
