// Segmented gossip synchronization — the related-work alternative the paper
// discusses (§V-A, refs. [8][9]): "the model is split into S segmentations,
// each device is responsible for one segmentation, and sends it to the
// other R devices."
//
// Each device rebuilds its model segment-by-segment: for every segment it
// averages its own copy with the copies of R randomly chosen peers. With
// R < K-1 this moves less data than a full ring at the cost of a noisier
// (partial) average; with R = K-1 every segment sees every device and the
// result equals the full mean.
#pragma once

#include <span>
#include <vector>

#include "comm/transport.hpp"
#include "common/rng.hpp"

namespace hadfl::comm {

struct SegmentedGossipConfig {
  std::size_t segments = 4;  ///< S
  std::size_t fanout = 2;    ///< R peers consulted per segment
};

/// Runs one segmented-gossip round over the participants' states (all of
/// equal size), in place. Advances clocks (barrier + per-device transfer
/// serialization) and volume counters. `wire_bytes` prices each transfer
/// (0 = use the actual state size); experiments pass the full-size model
/// bytes while the math runs on the scaled states (see DESIGN.md).
/// Returns the completion time.
SimTime segmented_gossip_average(SimTransport& transport,
                                 const std::vector<DeviceId>& participants,
                                 std::vector<std::span<float>> states,
                                 const SegmentedGossipConfig& config,
                                 Rng& rng, std::size_t wire_bytes = 0);

/// Bytes each device receives per round: R * ceil(N/S) * S ≈ R * N.
std::size_t segmented_gossip_bytes_per_device(std::size_t state_bytes,
                                              const SegmentedGossipConfig&
                                                  config);

}  // namespace hadfl::comm
