// Gossip scatter–gather model synchronization over a directed ring —
// HADFL's partial-aggregation collective (paper §III-D, "the selected
// devices transfer parameters to each other in a gossip-based
// scatter-gather manner (similar to [12])"), and the full-cluster
// synchronous variant used by the Decentralized-FedAvg baseline ([11]).
//
// Mechanically this is a ring all-reduce restricted to the given ring order
// operating on model *states* rather than gradients; the result on every
// ring member is the elementwise mean of the members' states (the
// Flag-masked aggregation of paper Eq. 5, normalized over the selected
// set).
#pragma once

#include <span>
#include <vector>

#include "comm/transport.hpp"

namespace hadfl::comm {

/// Averages states across the ring members, advancing clocks/volume per the
/// scatter-gather schedule. `ring[i]` owns `states[i]`. Returns completion
/// time. Throws CommError if a member is unreachable (callers wanting
/// fault tolerance should repair the ring first; see failure_detector.hpp).
SimTime gossip_ring_average(SimTransport& transport,
                            const std::vector<DeviceId>& ring,
                            std::vector<std::span<float>> states);

/// Timing-only model.
SimTime gossip_ring_duration(const sim::NetworkModel& network,
                             std::size_t ring_size, std::size_t state_bytes);

}  // namespace hadfl::comm
