#include "comm/compression.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hadfl::comm {

QuantizedState quantize_int8(std::span<const float> state) {
  QuantizedState q;
  q.values.resize(state.size());
  float max_abs = 0.0f;
  for (float v : state) max_abs = std::max(max_abs, std::fabs(v));
  if (max_abs == 0.0f) {
    q.scale = 0.0f;
    return q;  // all zeros already
  }
  q.scale = max_abs / 127.0f;
  for (std::size_t i = 0; i < state.size(); ++i) {
    q.values[i] = static_cast<std::int8_t>(std::clamp(
        static_cast<int>(std::lround(state[i] / q.scale)), -127, 127));
  }
  return q;
}

std::vector<float> dequantize_int8(const QuantizedState& q) {
  std::vector<float> out(q.values.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(q.values[i]) * q.scale;
  }
  return out;
}

SparseState sparsify_top_k(std::span<const float> state, std::size_t k) {
  SparseState s;
  s.dense_size = state.size();
  k = std::min(k, state.size());
  if (k == 0) return s;

  std::vector<std::uint32_t> order(state.size());
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return std::fabs(state[a]) > std::fabs(state[b]);
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());  // deterministic layout
  s.indices = order;
  s.values.reserve(k);
  for (std::uint32_t i : order) s.values.push_back(state[i]);
  return s;
}

std::vector<float> densify(const SparseState& s) {
  HADFL_CHECK_ARG(s.indices.size() == s.values.size(),
                  "sparse state index/value count mismatch");
  std::vector<float> out(s.dense_size, 0.0f);
  for (std::size_t i = 0; i < s.indices.size(); ++i) {
    HADFL_CHECK_ARG(s.indices[i] < s.dense_size,
                    "sparse index out of range");
    out[s.indices[i]] = s.values[i];
  }
  return out;
}

std::size_t apply_int8_roundtrip(std::span<float> state) {
  const QuantizedState q = quantize_int8(state);
  const std::vector<float> back = dequantize_int8(q);
  std::copy(back.begin(), back.end(), state.begin());
  return q.wire_bytes();
}

std::size_t apply_top_k_roundtrip(std::span<float> state,
                                  std::span<const float> reference,
                                  double keep_ratio) {
  HADFL_CHECK_ARG(state.size() == reference.size(),
                  "top-k reference size mismatch");
  HADFL_CHECK_ARG(keep_ratio > 0.0 && keep_ratio <= 1.0,
                  "keep_ratio must be in (0, 1]");
  std::vector<float> delta(state.size());
  for (std::size_t i = 0; i < state.size(); ++i) {
    delta[i] = state[i] - reference[i];
  }
  const auto k = static_cast<std::size_t>(
      std::max(1.0, std::ceil(keep_ratio * static_cast<double>(delta.size()))));
  const SparseState s = sparsify_top_k(delta, k);
  const std::vector<float> kept = densify(s);
  for (std::size_t i = 0; i < state.size(); ++i) {
    state[i] = reference[i] + kept[i];
  }
  return s.wire_bytes();
}

}  // namespace hadfl::comm
