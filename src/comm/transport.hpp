// Point-to-point transport over the simulated cluster.
//
// All communication primitives go through SimTransport so that (a) virtual
// clocks advance consistently, (b) per-device communication volume is
// accounted (the paper's §II-B / §III-D analysis), and (c) fault injection
// applies uniformly: any transfer involving a dead endpoint fails.
//
// Timing model:
//  * blocking send: sender and receiver both reach
//    max(t_src, t_dst) + latency + bytes/bandwidth — a rendezvous transfer,
//    which is how the synchronous ring steps behave.
//  * non-blocking send: the payload leaves at t_src; the receiver is
//    advanced to t_src + latency + bytes/bandwidth; the sender's clock does
//    not move (paper §III-D: the aggregated model is pushed to unselected
//    devices "in a non-blocking manner").
#pragma once

#include <cstddef>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/network.hpp"

namespace hadfl::comm {

using sim::DeviceId;
using sim::SimTime;

/// Per-device communication counters (bytes).
struct VolumeCounters {
  std::vector<std::size_t> sent;
  std::vector<std::size_t> received;

  std::size_t total_sent() const;
  std::size_t total_received() const;
};

class SimTransport {
 public:
  SimTransport(sim::Cluster& cluster, sim::NetworkModel network);

  sim::Cluster& cluster() { return *cluster_; }
  const sim::NetworkModel& network() const { return network_; }

  /// Rendezvous transfer. Throws hadfl::CommError if either endpoint is
  /// unreachable at the transfer time. Returns the completion time.
  SimTime send(DeviceId src, DeviceId dst, std::size_t bytes);

  /// Fire-and-forget transfer; returns the arrival time at `dst`.
  /// Throws if the sender is dead; a dead receiver consumes the send
  /// (volume counted at the sender) but throws CommError.
  SimTime send_nonblocking(DeviceId src, DeviceId dst, std::size_t bytes);

  /// Bulk non-blocking fan-out: per-destination semantics identical to
  /// send_nonblocking (dead receivers consume the send but are reported,
  /// not fatal), evaluated over a fixed destination-range grid so the
  /// result — delivered/unreachable order, volume, clocks — is
  /// bit-identical to the serial loop at any `threads` value. The O(dsts)
  /// work (link timing, liveness, receiver clock advancement) runs in
  /// parallel; destinations must be distinct. Throws only when the sender
  /// itself is dead.
  struct FanoutResult {
    std::vector<DeviceId> delivered;
    std::vector<DeviceId> unreachable;
    SimTime last_arrival = 0.0;
  };
  FanoutResult send_fanout(DeviceId src, const std::vector<DeviceId>& dsts,
                           std::size_t bytes, std::size_t threads);

  /// Liveness probe: a zero-payload round trip. Costs the prober
  /// 2 * latency when the peer answers, or `timeout` when it does not.
  /// Returns whether the peer is alive.
  bool handshake(DeviceId src, DeviceId dst, SimTime timeout);

  /// Volume-only accounting for collectives that advance clocks with their
  /// own schedule model (ring steps run concurrently on disjoint links, so
  /// per-message clock advancement would over-serialize them).
  void account(DeviceId src, DeviceId dst, std::size_t bytes);

  /// Accounting for traffic with an endpoint outside the cluster (the
  /// central parameter server of the FedAvg baseline).
  void account_external(DeviceId device, std::size_t sent_bytes,
                        std::size_t received_bytes);

  const VolumeCounters& volume() const { return volume_; }
  void reset_volume();

  /// Convenience: cost of moving `bytes` across a full-speed link.
  SimTime transfer_time(std::size_t bytes) const {
    return network_.transfer_time(bytes);
  }

  /// Cost of moving `bytes` between two specific devices: the effective
  /// bandwidth is the network bandwidth scaled by the slower endpoint's
  /// bandwidth_scale (§VI future work: heterogeneous network bandwidth).
  SimTime link_time(DeviceId src, DeviceId dst, std::size_t bytes) const;

 private:
  void check_device(DeviceId id) const;

  sim::Cluster* cluster_;
  sim::NetworkModel network_;
  VolumeCounters volume_;
};

}  // namespace hadfl::comm
