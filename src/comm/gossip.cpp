#include "comm/gossip.hpp"

#include "comm/allreduce.hpp"

namespace hadfl::comm {

SimTime gossip_ring_average(SimTransport& transport,
                            const std::vector<DeviceId>& ring,
                            std::vector<std::span<float>> states) {
  // The scatter-gather gossip ring shares its schedule (and therefore cost
  // model) with ring all-reduce; only the payload semantics differ (model
  // states vs gradients), which the callers own.
  return ring_allreduce_average(transport, ring, std::move(states));
}

SimTime gossip_ring_duration(const sim::NetworkModel& network,
                             std::size_t ring_size, std::size_t state_bytes) {
  return ring_allreduce_duration(network, ring_size, state_bytes);
}

}  // namespace hadfl::comm
