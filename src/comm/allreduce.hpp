// Ring all-reduce (average) — the collective used by the distributed-
// training baseline (PyTorch DDP / Horovod style, paper ref. [12]).
//
// The classic two-phase algorithm over K participants with N-element
// buffers: K-1 reduce-scatter steps followed by K-1 all-gather steps, each
// moving N/K elements per device per step. Every device therefore sends and
// receives 2 * (K-1)/K * N elements, and the collective completes in
// 2 * (K-1) * (latency + (N/K) * elem_size / bandwidth) after the slowest
// participant arrives.
//
// The numeric result is applied exactly (true elementwise mean across
// participants); the ring structure is used for timing and volume.
#pragma once

#include <span>
#include <vector>

#include "comm/transport.hpp"

namespace hadfl::comm {

/// Averages the participants' buffers elementwise in place and advances
/// virtual clocks / volume counters per the ring schedule. All buffers must
/// have the same size. `participants[i]` owns `buffers[i]`.
/// Returns the completion time (every participant's clock afterwards).
SimTime ring_allreduce_average(SimTransport& transport,
                               const std::vector<DeviceId>& participants,
                               std::vector<std::span<float>> buffers);

/// Pure timing model of the same collective (no data): useful for analytic
/// benches and property tests.
SimTime ring_allreduce_duration(const sim::NetworkModel& network,
                                std::size_t participants,
                                std::size_t buffer_bytes);

/// Clock/volume-only collective: advances the participants' clocks and
/// accounts the ring-schedule volume for a buffer of `bytes`, without
/// touching data. Used when the numeric reduction is done elsewhere (e.g.
/// the distributed baseline computes the exact mean gradient once but must
/// still pay the collective's cost). Returns completion time.
SimTime simulate_ring_allreduce(SimTransport& transport,
                                const std::vector<DeviceId>& participants,
                                std::size_t bytes);

}  // namespace hadfl::comm
