// Non-blocking broadcast of the aggregated model to unselected devices
// (paper §III-D: "a random device in the partial synchronization topology
// transmits the latest model parameters to the unselected K - N_p devices
// in a non-blocking manner").
#pragma once

#include <vector>

#include "comm/transport.hpp"

namespace hadfl::comm {

struct BroadcastResult {
  std::vector<DeviceId> delivered;   ///< receivers that got the payload
  std::vector<DeviceId> unreachable; ///< receivers that were down
  SimTime last_arrival = 0.0;
};

/// Pushes `bytes` from `src` to each destination. The sender's clock is not
/// advanced (hand-off to the NIC); each reachable destination is advanced
/// to its arrival time. Destinations that are down are reported, not fatal.
BroadcastResult broadcast_nonblocking(SimTransport& transport, DeviceId src,
                                      const std::vector<DeviceId>& dsts,
                                      std::size_t bytes);

/// Same semantics and bit-identical results, with the O(dsts) per-receiver
/// work (link timing, liveness, clock advancement) spread over `threads`
/// via SimTransport::send_fanout — the fleet engine's K-wide broadcast.
BroadcastResult broadcast_nonblocking(SimTransport& transport, DeviceId src,
                                      const std::vector<DeviceId>& dsts,
                                      std::size_t bytes, std::size_t threads);

}  // namespace hadfl::comm
