#include "comm/failure_detector.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"

namespace hadfl::comm {

RingRepairResult repair_ring(SimTransport& transport,
                             const std::vector<DeviceId>& ring,
                             const RingRepairConfig& config) {
  HADFL_CHECK_ARG(!ring.empty(), "repair_ring on empty ring");
  sim::Cluster& cluster = transport.cluster();

  RingRepairResult result;
  result.ring = ring;

  // Iterate until stable: bypassing one device changes the downstream
  // relationships, and multiple members may have died.
  bool changed = true;
  while (changed && result.ring.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < result.ring.size(); ++i) {
      const DeviceId candidate = result.ring[i];
      // The downstream neighbour is the one who notices the silence: data
      // flows candidate -> downstream in the directed ring.
      const DeviceId downstream = result.ring[(i + 1) % result.ring.size()];
      if (downstream == candidate) break;
      if (cluster.faults().alive(candidate, cluster.time(downstream))) {
        continue;
      }
      // Downstream waits the pre-specified time, then handshakes.
      cluster.advance(downstream, config.wait_before_handshake);
      const bool alive = transport.handshake(downstream, candidate,
                                             config.handshake_timeout);
      if (alive) continue;  // transient: came back within the window
      // Warn the dead device's upstream, which bypasses it.
      const DeviceId upstream =
          result.ring[(i + result.ring.size() - 1) % result.ring.size()];
      if (upstream != downstream) {
        cluster.advance(downstream, transport.network().latency);
        cluster.advance_to(upstream, cluster.time(downstream));
      }
      HADFL_INFO("ring repair: dev" << candidate << " bypassed (upstream dev"
                                    << upstream << " -> dev" << downstream
                                    << ")");
      result.removed.push_back(candidate);
      result.ring.erase(result.ring.begin() +
                        static_cast<std::ptrdiff_t>(i));
      ++result.repairs;
      changed = true;
      break;
    }
  }

  // Single survivor that is itself dead: report an empty ring.
  if (result.ring.size() == 1 &&
      !cluster.faults().alive(result.ring[0], cluster.time(result.ring[0]))) {
    result.removed.push_back(result.ring[0]);
    result.ring.clear();
  }
  return result;
}

}  // namespace hadfl::comm
