#include "comm/segmented_gossip.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hadfl::comm {

std::size_t segmented_gossip_bytes_per_device(
    std::size_t state_bytes, const SegmentedGossipConfig& config) {
  HADFL_CHECK_ARG(config.segments > 0, "segments must be positive");
  const std::size_t chunk =
      (state_bytes + config.segments - 1) / config.segments;
  return config.fanout * chunk * config.segments;
}

SimTime segmented_gossip_average(SimTransport& transport,
                                 const std::vector<DeviceId>& participants,
                                 std::vector<std::span<float>> states,
                                 const SegmentedGossipConfig& config,
                                 Rng& rng, std::size_t wire_bytes) {
  HADFL_CHECK_ARG(participants.size() >= 2,
                  "segmented gossip needs at least two participants");
  HADFL_CHECK_ARG(participants.size() == states.size(),
                  "participant/state count mismatch");
  HADFL_CHECK_ARG(config.segments > 0, "segments must be positive");
  HADFL_CHECK_ARG(config.fanout > 0 &&
                      config.fanout < participants.size(),
                  "fanout must be in [1, K-1]");
  const std::size_t n = states.front().size();
  for (const auto& s : states) {
    HADFL_CHECK_SHAPE(s.size() == n, "state size mismatch");
  }

  sim::Cluster& cluster = transport.cluster();
  SimTime start = 0.0;
  for (DeviceId id : participants) start = std::max(start, cluster.time(id));
  for (DeviceId id : participants) {
    if (!cluster.faults().alive(id, start)) {
      throw CommError("segmented_gossip: device " + std::to_string(id) +
                      " is down");
    }
    cluster.advance_to(id, start);
  }

  const std::size_t k = participants.size();
  const std::size_t seg_len = (n + config.segments - 1) / config.segments;
  const std::size_t total_wire =
      wire_bytes != 0 ? wire_bytes : n * sizeof(float);
  const std::size_t wire_seg_bytes =
      (total_wire + config.segments - 1) / config.segments;

  // Compute the new states into a staging area so every read sees the
  // pre-round values (all exchanges conceptually happen concurrently).
  std::vector<std::vector<float>> next(k);
  for (std::size_t i = 0; i < k; ++i) {
    next[i].assign(states[i].begin(), states[i].end());
  }

  SimTime done = start;
  for (std::size_t i = 0; i < k; ++i) {
    SimTime busy_until = start;
    for (std::size_t seg = 0; seg < config.segments; ++seg) {
      const std::size_t begin = seg * seg_len;
      if (begin >= n) break;
      const std::size_t end = std::min(begin + seg_len, n);

      // Sample R distinct peers for this segment.
      std::vector<double> weights(k, 1.0);
      weights[i] = 0.0;
      const std::vector<std::size_t> peers =
          rng.weighted_sample_without_replacement(weights, config.fanout);

      // Average own copy + peers' copies of this segment.
      for (std::size_t j = begin; j < end; ++j) {
        double acc = states[i][j];
        for (std::size_t p : peers) acc += states[p][j];
        next[i][j] =
            static_cast<float>(acc / static_cast<double>(peers.size() + 1));
      }

      // Transfers serialize on the receiving device's link.
      for (std::size_t p : peers) {
        busy_until += transport.link_time(participants[p], participants[i],
                                          wire_seg_bytes);
        transport.account(participants[p], participants[i], wire_seg_bytes);
      }
    }
    cluster.advance_to(participants[i], busy_until);
    done = std::max(done, busy_until);
  }

  for (std::size_t i = 0; i < k; ++i) {
    std::copy(next[i].begin(), next[i].end(), states[i].begin());
  }
  return done;
}

}  // namespace hadfl::comm
