#include "comm/broadcast.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace hadfl::comm {

BroadcastResult broadcast_nonblocking(SimTransport& transport, DeviceId src,
                                      const std::vector<DeviceId>& dsts,
                                      std::size_t bytes) {
  BroadcastResult result;
  for (DeviceId dst : dsts) {
    HADFL_CHECK_ARG(dst != src, "broadcast destination equals source");
    try {
      const SimTime arrival = transport.send_nonblocking(src, dst, bytes);
      result.delivered.push_back(dst);
      result.last_arrival = std::max(result.last_arrival, arrival);
    } catch (const CommError&) {
      HADFL_WARN("broadcast: device " << dst << " unreachable, skipping");
      result.unreachable.push_back(dst);
    }
  }
  return result;
}

BroadcastResult broadcast_nonblocking(SimTransport& transport, DeviceId src,
                                      const std::vector<DeviceId>& dsts,
                                      std::size_t bytes, std::size_t threads) {
  SimTransport::FanoutResult fan =
      transport.send_fanout(src, dsts, bytes, threads);
  for (const DeviceId dst : fan.unreachable) {
    HADFL_WARN("broadcast: device " << dst << " unreachable, skipping");
  }
  BroadcastResult result;
  result.delivered = std::move(fan.delivered);
  result.unreachable = std::move(fan.unreachable);
  result.last_arrival = fan.last_arrival;
  return result;
}

}  // namespace hadfl::comm
