#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace hadfl::obs {

namespace {

/// Relaxed CAS loop for atomic<double> accumulation/min/max (fetch_add on
/// floating atomics is not guaranteed everywhere we build).
template <typename Op>
void update_double(std::atomic<double>& target, double x, Op op) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, op(cur, x),
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Export hardening: a zero-count histogram's min/max sentinels (±inf)
/// must never reach the CSV/JSON — downstream parsers choke on "inf".
double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  HADFL_CHECK_ARG(!bounds_.empty(), "histogram needs at least one bound");
  HADFL_CHECK_ARG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                      std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                          bounds_.end(),
                  "histogram bounds must be strictly increasing");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  update_double(sum_, x, [](double a, double b) { return a + b; });
  update_double(min_, x, [](double a, double b) { return std::min(a, b); });
  update_double(max_, x, [](double a, double b) { return std::max(a, b); });
  // count_ goes last (release, paired with the acquire in count()): a
  // reader that sees count > 0 then also sees min_/max_/sum_ past their
  // ±inf/0 init values. The old order published count first, so a snapshot
  // racing the first observe could export count=1 with min=inf into the
  // metrics CSV.
  count_.fetch_add(1, std::memory_order_release);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  HADFL_CHECK_ARG(i <= bounds_.size(), "histogram bucket out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return count() > 0 ? v : 0.0;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return count() > 0 ? v : 0.0;
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  HADFL_CHECK_ARG(start > 0.0 && factor > 1.0 && count > 0,
                  "exponential_bounds needs start > 0, factor > 1, count > 0");
  std::vector<double> bounds(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds[i] = b;
    b *= factor;
  }
  return bounds;
}

void observe_sampled(Histogram& histogram, std::span<const double> values,
                     std::size_t cap) {
  if (values.empty() || cap == 0) return;
  if (values.size() <= cap) {
    for (const double v : values) histogram.observe(v);
    return;
  }
  // Even stride over the span: index floor(i * n / cap) for i = 0..cap-1,
  // strictly increasing because n > cap.
  const std::size_t n = values.size();
  for (std::size_t i = 0; i < cap; ++i) {
    histogram.observe(values[i * n / cap]);
  }
}

const CounterSample* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void MetricsSnapshot::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"metric", "type", "stat", "value"});
  for (const auto& c : counters) {
    csv.row(std::vector<std::string>{c.name, "counter", "value",
                                     std::to_string(c.value)});
  }
  for (const auto& h : histograms) {
    const auto stat = [&](const std::string& name, const std::string& v) {
      csv.row(std::vector<std::string>{h.name, "histogram", name, v});
    };
    stat("count", std::to_string(h.count));
    stat("sum", format_double(finite_or_zero(h.sum)));
    stat("mean", format_double(finite_or_zero(h.mean())));
    stat("min", format_double(finite_or_zero(h.min)));
    stat("max", format_double(finite_or_zero(h.max)));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? "le_" + format_double(h.bounds[i]) : "le_inf";
      stat(le, std::to_string(cumulative));
    }
  }
}

std::string MetricsSnapshot::render() const {
  std::ostringstream os;
  for (const auto& c : counters) {
    os << c.name << ": " << c.value << "\n";
  }
  os.precision(6);
  for (const auto& h : histograms) {
    os << h.name << ": count=" << h.count
       << " mean=" << finite_or_zero(h.mean())
       << " min=" << finite_or_zero(h.min)
       << " max=" << finite_or_zero(h.max) << "\n";
  }
  return os.str();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) {
    out.counters.push_back(CounterSample{name, c->value()});
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.buckets.resize(s.bounds.size() + 1);
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      s.buckets[i] = h->bucket_count(i);
    }
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    out.histograms.push_back(std::move(s));
  }
  return out;
}

}  // namespace hadfl::obs
