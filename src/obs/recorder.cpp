#include "obs/recorder.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace hadfl::obs {

SpanRecorder::SpanRecorder(std::size_t tracks, std::size_t capacity_per_track)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity_per_track) {
  HADFL_CHECK_ARG(tracks > 0, "recorder needs at least one track");
  HADFL_CHECK_ARG(capacity_per_track > 0,
                  "recorder track capacity must be positive");
  tracks_.reserve(tracks);
  for (std::size_t t = 0; t < tracks; ++t) {
    tracks_.push_back(std::make_unique<Track>());
    // reserve, not resize: slots are appended by the owning writer, so the
    // data pointer must never move (drain reads it concurrently) but the
    // elements need not be constructed up front.
    tracks_.back()->slots.reserve(capacity_);
  }
}

double SpanRecorder::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void SpanRecorder::record(std::size_t track, double start, double end,
                          SpanKind kind, std::string label) {
  HADFL_CHECK_ARG(track < tracks_.size(), "recorder track out of range");
  Track& t = *tracks_[track];
  const std::size_t n = t.count.load(std::memory_order_relaxed);
  if (n >= capacity_) {
    t.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Within the reserved capacity push_back never reallocates, so the data
  // pointer the drain side holds stays valid; `count` is published with
  // release only after the element is fully constructed.
  t.slots.push_back(Span{track, start, end, kind, std::move(label)});
  t.count.store(n + 1, std::memory_order_release);
}

std::uint64_t SpanRecorder::dropped() const {
  std::uint64_t total = 0;
  for (const auto& t : tracks_) {
    total += t->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

Timeline SpanRecorder::drain() const {
  std::vector<Span> all;
  for (const auto& t : tracks_) {
    const std::size_t n = t->count.load(std::memory_order_acquire);
    all.insert(all.end(), t->slots.begin(),
               t->slots.begin() + static_cast<std::ptrdiff_t>(n));
  }
  std::stable_sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    return a.start < b.start;
  });
  Timeline out;
  for (auto& s : all) {
    out.record(s.device, s.start, s.end, s.kind, std::move(s.label));
  }
  return out;
}

}  // namespace hadfl::obs
