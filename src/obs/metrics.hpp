// Thread-safe counters and fixed-bucket histograms for the rt runtime.
//
// Everything on the hot path is a relaxed atomic: `Counter::add` is one
// fetch_add, `Histogram::observe` is a branchless-ish bucket walk plus a
// handful of relaxed RMWs. Registration (name → instrument lookup) takes a
// mutex, so callers resolve their instruments once up front and keep the
// reference — the registry hands out stable references for its lifetime.
// `MetricsRegistry::snapshot()` copies the current values into a plain
// `MetricsSnapshot` that can be stored in results, rendered, or dumped to
// CSV after the run.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace hadfl::obs {

/// Monotonic event/byte counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
/// an implicit +inf overflow bucket. Tracks count/sum/min/max alongside.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Observations in bucket `i` (i == bounds().size() is the +inf bucket).
  std::uint64_t bucket_count(std::size_t i) const;
  /// Acquire-paired with the release increment in observe(): count > 0
  /// implies the matching sum/min/max updates are visible.
  std::uint64_t count() const {
    return count_.load(std::memory_order_acquire);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// `count` bucket bounds start, start*factor, start*factor^2, ... — the
/// usual latency-histogram spacing. start > 0, factor > 1, count > 0.
std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count);

/// Observes at most `cap` of `values`, evenly strided across the span (the
/// first value is always taken; cap 0 records nothing). For per-device
/// series this bounds the per-round observe cost by the cap instead of the
/// fleet size while keeping the sample spread over the id range.
void observe_sampled(Histogram& histogram, std::span<const double> values,
                     std::size_t cap);

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (+inf last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Copied point-in-time values of every registered instrument.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<HistogramSample> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }
  const CounterSample* find_counter(const std::string& name) const;
  const HistogramSample* find_histogram(const std::string& name) const;

  /// Long-format CSV: metric,type,stat,value. Counters emit one `value`
  /// row; histograms emit count/sum/mean/min/max rows plus cumulative
  /// `le_<bound>` bucket rows (Prometheus convention, `le_inf` last).
  void write_csv(const std::string& path) const;

  /// Human-readable multi-line summary for run reports.
  std::string render() const;
};

class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first
  /// use. The reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);

  /// Returns the histogram registered under `name`, creating it with
  /// `upper_bounds` on first use (later calls ignore the bounds argument).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hadfl::obs
