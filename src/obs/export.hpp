// Trace exporters.
//
// `write_chrome_trace` emits the Trace Event Format JSON that
// chrome://tracing and https://ui.perfetto.dev load directly: one complete
// ("ph":"X") event per span, timestamps in microseconds, one Perfetto
// track per device (tid = device id). The CSV and ASCII forms live on
// `obs::Timeline` itself (write_csv / render_timeline).
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"

namespace hadfl::obs {

/// Writes `spans` as Chrome trace-event JSON to `path`. Throws Error on
/// failure to open the file.
void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans);

/// JSON string escaping for span labels (exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace hadfl::obs
