#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace hadfl::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans) {
  std::ofstream out(path);
  HADFL_CHECK_MSG(out.good(), "failed to open trace file " << path);
  out << "{\"traceEvents\":[";
  out.precision(17);
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out << ",";
    first = false;
    const std::string name =
        s.label.empty() ? span_kind_name(s.kind) : s.label;
    // Complete events; the span clock is seconds, Chrome wants µs.
    out << "\n{\"name\":\"" << json_escape(name) << "\",\"cat\":\""
        << span_kind_name(s.kind) << "\",\"ph\":\"X\",\"ts\":"
        << s.start * 1e6 << ",\"dur\":" << (s.end - s.start) * 1e6
        << ",\"pid\":0,\"tid\":" << s.device << "}";
  }
  out << "\n]}\n";
}

}  // namespace hadfl::obs
