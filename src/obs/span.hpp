// The span model shared by every backend's execution traces.
//
// A `Span` is one contiguous stretch of activity on one device (or on the
// coordinator): local compute, a synchronization collective, a broadcast
// push/integration, idle waiting, a stalled/aborted attempt, or a §III-D
// ring repair. The simulator's `sim::TraceRecorder` and the rt runtime's
// `obs::SpanRecorder` both produce `Timeline`s over this one vocabulary,
// so the same renderers and exporters (obs/export.hpp) apply to both — a
// virtual-time Fig. 1 timeline and a wall-clock rt trace differ only in
// what the time axis means.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hadfl::obs {

enum class SpanKind { kCompute, kSync, kIdle, kBroadcast, kStall, kRepair };

const char* span_kind_name(SpanKind kind);

/// Character used for `kind` in the ASCII timeline: compute = '#',
/// sync = 'S', broadcast = 'B', idle = '.', stall = 'x', repair = 'R'.
char span_kind_char(SpanKind kind);

struct Span {
  std::size_t device = 0;
  double start = 0.0;  ///< seconds (virtual or wall, backend-defined)
  double end = 0.0;
  SpanKind kind = SpanKind::kCompute;
  std::string label;
};

/// An ordered collection of spans plus the rendering/dumping operations
/// every trace consumer needs. Single-threaded; concurrent producers go
/// through `SpanRecorder` (obs/recorder.hpp) and drain into one of these.
class Timeline {
 public:
  void record(std::size_t device, double start, double end, SpanKind kind,
              std::string label = {});

  const std::vector<Span>& spans() const { return spans_; }
  std::vector<Span> spans_for(std::size_t device) const;
  double end_time() const;

  /// Renders an ASCII Gantt chart: one row per device, `columns` characters
  /// wide, using `span_kind_char` per span.
  std::string render_timeline(std::size_t num_devices,
                              std::size_t columns = 80) const;

  /// CSV dump (device, start, end, kind, label).
  void write_csv(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace hadfl::obs
