#include "obs/span.hpp"

#include <algorithm>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace hadfl::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kSync: return "sync";
    case SpanKind::kIdle: return "idle";
    case SpanKind::kBroadcast: return "broadcast";
    case SpanKind::kStall: return "stall";
    case SpanKind::kRepair: return "repair";
  }
  return "?";
}

char span_kind_char(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute: return '#';
    case SpanKind::kSync: return 'S';
    case SpanKind::kBroadcast: return 'B';
    case SpanKind::kIdle: return '.';
    case SpanKind::kStall: return 'x';
    case SpanKind::kRepair: return 'R';
  }
  return '?';
}

void Timeline::record(std::size_t device, double start, double end,
                      SpanKind kind, std::string label) {
  HADFL_CHECK_ARG(end >= start, "span ends before it starts");
  spans_.push_back(Span{device, start, end, kind, std::move(label)});
}

std::vector<Span> Timeline::spans_for(std::size_t device) const {
  std::vector<Span> out;
  for (const auto& s : spans_) {
    if (s.device == device) out.push_back(s);
  }
  return out;
}

double Timeline::end_time() const {
  double t = 0.0;
  for (const auto& s : spans_) t = std::max(t, s.end);
  return t;
}

std::string Timeline::render_timeline(std::size_t num_devices,
                                      std::size_t columns) const {
  HADFL_CHECK_ARG(columns > 0, "timeline needs at least one column");
  const double horizon = end_time();
  std::string out;
  for (std::size_t d = 0; d < num_devices; ++d) {
    std::string row(columns, '.');
    for (const auto& s : spans_) {
      if (s.device != d || horizon <= 0.0) continue;
      auto col = [&](double t) {
        return std::min<std::size_t>(
            columns - 1,
            static_cast<std::size_t>(t / horizon *
                                     static_cast<double>(columns)));
      };
      const char c = span_kind_char(s.kind);
      for (std::size_t col_i = col(s.start); col_i <= col(s.end - 1e-12) &&
                                             col_i < columns;
           ++col_i) {
        row[col_i] = c;
      }
    }
    out += "dev" + std::to_string(d) + " |" + row + "|\n";
  }
  return out;
}

void Timeline::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"device", "start", "end", "kind", "label"});
  for (const auto& s : spans_) {
    csv.row(std::vector<std::string>{
        std::to_string(s.device), std::to_string(s.start),
        std::to_string(s.end), span_kind_name(s.kind), s.label});
  }
}

}  // namespace hadfl::obs
