// Concurrent span recording for the real-time runtime.
//
// `SpanRecorder` holds one pre-reserved track per producer thread (one per
// device worker plus one for the coordinator). Each track is single-writer:
// only its owning thread calls `record` on it, so publishing a span is a
// plain slot write followed by a release store of the count — no locks, no
// CAS, nothing shared between producers. The drain side reads each count
// with acquire and copies exactly the published prefix, which stays valid
// even while straggler threads (e.g. a fenced worker finishing its last
// command) are still appending: a full track drops new spans instead of
// overwriting old ones, so every published slot is immutable for the rest
// of the run. That drop-newest policy is what makes an end-of-run drain
// race-free without joining the producers first; dropped spans are counted
// so a truncated trace is detectable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/span.hpp"

namespace hadfl::obs {

class SpanRecorder {
 public:
  /// `capacity_per_track` bounds the spans kept per producer; recording
  /// beyond it drops (and counts) the newest spans.
  explicit SpanRecorder(std::size_t tracks,
                        std::size_t capacity_per_track = 1 << 14);

  /// Seconds elapsed on the steady clock since this recorder was built —
  /// the time base every recorded span uses.
  double now_s() const;

  /// Appends a span to `track`. Must only be called from the track's
  /// owning thread (single writer per track).
  void record(std::size_t track, double start, double end, SpanKind kind,
              std::string label = {});

  std::size_t tracks() const { return tracks_.size(); }

  /// Spans rejected because their track was full.
  std::uint64_t dropped() const;

  /// Copies every published span into a Timeline (ordered by start time).
  /// Safe to call while producers are still recording — it sees a
  /// consistent prefix of each track.
  Timeline drain() const;

 private:
  struct Track {
    std::vector<Span> slots;
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<Track>> tracks_;
};

}  // namespace hadfl::obs
