#include "net/socket_util.hpp"

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <thread>

#include "common/error.hpp"

namespace hadfl::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw CommError("net: " + what + ": " + std::strerror(errno));
}

int tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

sockaddr_un uds_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HADFL_CHECK_ARG(path.size() < sizeof(addr.sun_path),
                  "unix socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

constexpr double kDialRetrySleepS = 0.02;

/// Dials with retry while the peer's listener does not exist yet.
template <typename MakeSocket, typename Connect>
int dial_retry(double timeout_s, const std::string& what,
               std::uint64_t* retries, const MakeSocket& make_socket,
               const Connect& connect_fn) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    const int fd = make_socket();
    if (connect_fn(fd) == 0) return fd;
    const int err = errno;
    close_fd(fd);
    const bool retryable = err == ECONNREFUSED || err == ENOENT ||
                           err == ECONNRESET || err == EAGAIN;
    if (!retryable || std::chrono::steady_clock::now() >= deadline) {
      errno = err;
      throw_errno("connect to " + what);
    }
    if (retries != nullptr) ++*retries;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kDialRetrySleepS));
  }
}

}  // namespace

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_cloexec(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0 ||
      ::fcntl(fd, F_SETFD,
              on ? (flags | FD_CLOEXEC) : (flags & ~FD_CLOEXEC)) < 0) {
    throw_errno("fcntl(FD_CLOEXEC)");
  }
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

TcpListener make_tcp_listener() {
  const int fd = tcp_socket();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close_fd(fd);
    throw_errno("bind(loopback)");
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    close_fd(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    close_fd(fd);
    throw_errno("getsockname");
  }
  return TcpListener{fd, ntohs(addr.sin_port)};
}

int make_uds_listener(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());
  sockaddr_un addr = uds_addr(path);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close_fd(fd);
    throw_errno("bind " + path);
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    close_fd(fd);
    throw_errno("listen " + path);
  }
  return fd;
}

int dial_tcp(std::uint16_t port, double timeout_s, std::uint64_t* retries) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return dial_retry(
      timeout_s, "127.0.0.1:" + std::to_string(port), retries, tcp_socket,
      [&addr](int fd) {
        return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr));
      });
}

int dial_uds(const std::string& path, double timeout_s,
             std::uint64_t* retries) {
  sockaddr_un addr = uds_addr(path);
  return dial_retry(
      timeout_s, path, retries,
      [] {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) throw_errno("socket(AF_UNIX)");
        return fd;
      },
      [&addr](int fd) {
        return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr));
      });
}

void write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
}

std::string make_socket_dir() {
  char templ[] = "/tmp/hadfl-net-XXXXXX";
  if (::mkdtemp(templ) == nullptr) throw_errno("mkdtemp");
  return std::string(templ);
}

void remove_socket_dir(const std::string& dir) noexcept {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

std::size_t sweep_stale_socket_dirs(double max_age_s) noexcept {
  DIR* d = ::opendir("/tmp");
  if (d == nullptr) return 0;
  const std::time_t now = std::time(nullptr);
  std::size_t removed = 0;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("hadfl-net-", 0) != 0) continue;
    const std::string path = "/tmp/" + name;
    struct stat st{};
    if (::lstat(path.c_str(), &st) != 0) continue;
    if (!S_ISDIR(st.st_mode)) continue;
    if (st.st_uid != ::getuid()) continue;  // another user's run
    const double age_s = std::difftime(now, st.st_mtime);
    if (age_s < max_age_s) continue;
    remove_socket_dir(path);
    ++removed;
  }
  ::closedir(d);
  return removed;
}

}  // namespace hadfl::net
