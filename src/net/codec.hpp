// Control-plane serialization for the socket backend: rt::Command and
// rt::Report travel between the coordinator process and the device
// processes as kControl frames (rt/wire_format.hpp). The body is one
// subtype byte (kCtrlCommand / kCtrlReport) followed by the fields in
// declaration order, little-endian via ByteWriter/ByteReader.
//
// Command::cancel is deliberately NOT serialized: it is a process-local
// atomic. The receiving NetWorkerIo recreates a fresh flag per collective
// id and raises it when a kCancel frame arrives (net/runner.cpp), so abort
// propagation works across the process boundary with identical worker-side
// semantics.
//
// Every decoder is total: a truncated, oversized, or trailing-garbage body
// returns false (the caller drops the frame / connection) and never
// over-reads or allocates from a corrupt length field.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rt/protocol.hpp"

namespace hadfl::net {

constexpr std::uint8_t kCtrlCommand = 1;
constexpr std::uint8_t kCtrlReport = 2;

/// Serializes `cmd` into a kControl body (leading kCtrlCommand byte).
std::vector<std::uint8_t> encode_command(const rt::Command& cmd);

/// Serializes `report` into a kControl body (leading kCtrlReport byte).
std::vector<std::uint8_t> encode_report(const rt::Report& report);

/// Decodes the payload after the subtype byte. False on malformed input.
bool decode_command(std::span<const std::uint8_t> body, rt::Command& out);
bool decode_report(std::span<const std::uint8_t> body, rt::Report& out);

}  // namespace hadfl::net
