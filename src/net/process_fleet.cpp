#include "net/process_fleet.hpp"

#include <csignal>
#include <cstring>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "net/socket_util.hpp"

namespace hadfl::net {

namespace {

std::string join_ports(const std::vector<std::uint16_t>& ports) {
  std::string out;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(ports[i]);
  }
  return out;
}

int status_to_exit_code(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

// ---- Live socket-dir registry. ~ProcessFleet removes the dir on the
// normal path, but an exit() before the destructor runs (fatal error
// paths, test harness aborts) used to leak it until the next user noticed
// /tmp filling with hadfl-net-* husks. Every live dir is registered here
// and an atexit hook removes whatever is still listed. The vector is
// heap-allocated and never freed so the hook can run at any point of
// static destruction.
std::mutex g_live_dirs_mutex;
std::vector<std::string>* g_live_dirs = nullptr;

void remove_live_dirs_at_exit() {
  std::lock_guard<std::mutex> lock(g_live_dirs_mutex);
  if (g_live_dirs == nullptr) return;
  for (const std::string& dir : *g_live_dirs) remove_socket_dir(dir);
  g_live_dirs->clear();
}

void register_live_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_live_dirs_mutex);
  if (g_live_dirs == nullptr) {
    g_live_dirs = new std::vector<std::string>();
    std::atexit(remove_live_dirs_at_exit);
  }
  g_live_dirs->push_back(dir);
}

void unregister_live_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_live_dirs_mutex);
  if (g_live_dirs == nullptr) return;
  for (auto it = g_live_dirs->begin(); it != g_live_dirs->end(); ++it) {
    if (*it == dir) {
      g_live_dirs->erase(it);
      return;
    }
  }
}

}  // namespace

ProcessFleet::ProcessFleet(FleetOptions options)
    : options_(std::move(options)) {
  HADFL_CHECK_ARG(options_.num_devices > 0, "fleet needs at least one node");
  HADFL_CHECK_ARG(!options_.node_binary.empty(), "fleet needs a node binary");
  children_.resize(options_.num_devices);
  if (options_.kind == TransportKind::kTcp) {
    ports_.reserve(options_.num_devices);
    listener_fds_.reserve(options_.num_devices);
    for (std::size_t d = 0; d < options_.num_devices; ++d) {
      TcpListener listener = make_tcp_listener();
      // CLOEXEC by default; child d clears it on its own fd before exec.
      set_cloexec(listener.fd, true);
      ports_.push_back(listener.port);
      listener_fds_.push_back(listener.fd);
    }
  } else {
    // A run killed before our destructor leaks its dir (mkdtemp never
    // reuses names, so they pile up); sweep anything stale first, then
    // register ours so plain exit() paths also clean up.
    sweep_stale_socket_dirs();
    socket_dir_ = make_socket_dir();
    register_live_dir(socket_dir_);
  }
}

ProcessFleet::~ProcessFleet() {
  shutdown();
  for (int fd : listener_fds_) close_fd(fd);
  listener_fds_.clear();
  if (!socket_dir_.empty()) {
    remove_socket_dir(socket_dir_);
    unregister_live_dir(socket_dir_);
  }
}

void ProcessFleet::spawn() {
  HADFL_CHECK_ARG(!spawned_, "fleet already spawned");
  spawned_ = true;
  for (std::size_t d = 0; d < options_.num_devices; ++d) {
    std::vector<std::string> args;
    args.push_back(options_.node_binary);
    for (const std::string& arg : options_.common_args) args.push_back(arg);
    args.push_back("--node-id=" + std::to_string(d));
    args.push_back("--run-nonce=" + std::to_string(options_.run_nonce));
    if (options_.kind == TransportKind::kTcp) {
      args.push_back("--transport=tcp");
      args.push_back("--listen-fd=" + std::to_string(listener_fds_[d]));
      args.push_back("--tcp-ports=" + join_ports(ports_));
    } else {
      args.push_back("--transport=uds");
      args.push_back("--socket-dir=" + socket_dir_);
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
      throw CommError("net: fork: " + std::string(std::strerror(errno)));
    }
    if (pid == 0) {
      // Child. Keep only this node's listener across exec; every other
      // inherited listener fd is CLOEXEC and vanishes automatically.
      if (options_.kind == TransportKind::kTcp) {
        try {
          set_cloexec(listener_fds_[d], false);
        } catch (...) {
          _exit(127);
        }
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      _exit(127);  // exec failed
    }
    children_[d].pid = pid;
    children_[d].running = true;
  }
  // The children now own their listeners; the parent side is done with
  // every listener fd.
  for (int fd : listener_fds_) close_fd(fd);
  listener_fds_.clear();
}

void ProcessFleet::reap(bool block) {
  for (Child& child : children_) {
    if (!child.running) continue;
    int status = 0;
    const pid_t r = ::waitpid(child.pid, &status, block ? 0 : WNOHANG);
    if (r == child.pid) {
      child.running = false;
      child.status = status_to_exit_code(status);
    }
  }
}

std::size_t ProcessFleet::poll_exits() {
  reap(/*block=*/false);
  std::size_t exited = 0;
  for (const Child& child : children_) {
    if (!child.running) ++exited;
  }
  return exited;
}

bool ProcessFleet::node_running(std::size_t d) const {
  return d < children_.size() && children_[d].running;
}

int ProcessFleet::exit_status(std::size_t d) const {
  return d < children_.size() ? children_[d].status : -1;
}

void ProcessFleet::kill_node(std::size_t d, int signo) {
  HADFL_CHECK_ARG(d < children_.size(), "node index out of range");
  if (children_[d].running) ::kill(children_[d].pid, signo);
}

std::size_t ProcessFleet::shutdown() {
  if (!spawned_) return 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(
                            options_.shutdown_grace_s);
  for (;;) {
    reap(/*block=*/false);
    bool any_running = false;
    for (const Child& child : children_) any_running |= child.running;
    if (!any_running || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (Child& child : children_) {
    if (child.running) {
      HADFL_DEBUG("net: SIGKILL straggler node pid " << child.pid);
      ::kill(child.pid, SIGKILL);
    }
  }
  reap(/*block=*/true);
  std::size_t abnormal = 0;
  for (const Child& child : children_) {
    if (child.status != 0) ++abnormal;
  }
  return abnormal;
}

}  // namespace hadfl::net
