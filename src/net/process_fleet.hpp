// ProcessFleet — spawns, monitors, and reaps the K device processes of a
// net-backend run.
//
// The parent (coordinator) process prepares the rendezvous *before* any
// fork so there is no bind/dial race it cannot absorb:
//   * TCP: binds one loopback listener per device up front; the kernel
//     queues connections in the backlog even before the child accepts, and
//     every process learns the full port list on its command line. Child d
//     inherits its own listener fd (cleared of CLOEXEC across exec); all
//     other fds are CLOEXEC and vanish at exec.
//   * UDS: creates a private socket directory; each node binds
//     node-<id>.sock itself and dialers retry until the bind lands.
//
// Each child runs `node_binary` (hadfl_node) with the forwarded scenario
// arguments plus its endpoint wiring. Children exit on their own after the
// coordinator's kStop (or when the coordinator connection drops); shutdown
// grants a grace period, then SIGKILLs stragglers. kill_node() lets fault
// tests kill a live device process mid-run.
#pragma once

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "net/transport.hpp"

namespace hadfl::net {

struct FleetOptions {
  std::string node_binary;
  /// Scenario arguments every node needs to rebuild the identical run
  /// context (exp/cli_setup.hpp builds this list).
  std::vector<std::string> common_args;
  TransportKind kind = TransportKind::kTcp;
  std::size_t num_devices = 0;
  std::uint64_t run_nonce = 0;
  double shutdown_grace_s = 5.0;
};

class ProcessFleet {
 public:
  /// Prepares the rendezvous (listeners / socket dir). Does not fork yet.
  explicit ProcessFleet(FleetOptions options);
  ProcessFleet(const ProcessFleet&) = delete;
  ProcessFleet& operator=(const ProcessFleet&) = delete;
  /// Reaps every child (grace, then SIGKILL) and removes the socket dir.
  ~ProcessFleet();

  /// Forks and execs all K device processes.
  void spawn();

  /// TCP: the per-device listener ports (valid after construction).
  const std::vector<std::uint16_t>& ports() const { return ports_; }
  /// UDS: the private socket directory.
  const std::string& socket_dir() const { return socket_dir_; }

  /// Reaps any children that exited (non-blocking). Returns how many of
  /// the K processes are no longer running.
  std::size_t poll_exits();
  bool node_running(std::size_t d) const;
  /// Exit status of node d (-1 while running / unknown; signal deaths
  /// report 128+signo like a shell).
  int exit_status(std::size_t d) const;

  /// Sends `signo` to node d (fault-injection tests: SIGKILL a device).
  void kill_node(std::size_t d, int signo);

  /// Waits out the grace period, SIGKILLs stragglers, reaps everything.
  /// Returns the number of nodes that exited abnormally.
  std::size_t shutdown();

 private:
  struct Child {
    pid_t pid = -1;
    bool running = false;
    int status = -1;
  };

  void reap(bool block);

  FleetOptions options_;
  std::vector<std::uint16_t> ports_;
  std::vector<int> listener_fds_;
  std::string socket_dir_;
  std::vector<Child> children_;
  bool spawned_ = false;
};

}  // namespace hadfl::net
