// SocketTransport — the rt::Transport over real TCP / Unix-domain sockets.
//
// One SocketTransport lives in each process of a net-backend run: every
// device process owns endpoint d, the coordinator process owns the extra
// identity K (= num_devices; addressable for control frames but not a
// collective endpoint — size() stays K). Peers form a full mesh: the
// higher id dials the lower (the coordinator dials every device, device d
// dials devices 0..d-1) and each connection opens with a kHello handshake
// carrying magic / wire version / the dialer's device id / the run epoch —
// a mismatch on any of them closes the connection, so a stray process from
// another run can never join the mesh.
//
// A single poll()-driven IO thread per process owns every fd: it accepts,
// parses frames incrementally (rt/wire_format.hpp — malformed input drops
// the connection, truncated input waits), answers kPing with kPong even
// while the worker thread is busy or wedged (the exact analogue of the
// inproc endpoint daemon: a silently-dead worker still handshakes true and
// must be fenced by heartbeat timeout, §III-D), and drains the per-peer
// send queues. Worker/coordinator threads only append to those queues —
// sends are non-blocking up to a per-connection backpressure cap
// (kMaxQueuedBytes), beyond which the sending thread waits for the queue
// to drain.
//
// Rendezvous (`isend`) sends carry a sequence number and the want-ack
// flag; the receiver acks when the message is *popped* from its mailbox
// (consumed), nacks when it is purged, and a connection loss resolves all
// in-flight sends to that peer as dropped — matching InprocTransport's
// PendingSend semantics exactly, which is what lets rt/collectives.cpp and
// rt/worker.cpp run unchanged over sockets.
//
// Frame traffic is NOT the accounted volume: like the inproc backend, the
// VolumeCounters price the algorithm's exchanges (payload wire_bytes and
// account() calls); framing overhead, acks, beats and control frames show
// up only in the net.* counters (bytes on the wire, frames, connects,
// disconnects, dial retries).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "rt/mailbox.hpp"
#include "rt/transport.hpp"
#include "rt/wire_format.hpp"

namespace hadfl::net {

using rt::DeviceId;
using rt::Message;

enum class TransportKind { kTcp, kUds };

struct SocketTransportOptions {
  /// This process's identity: a device id in [0, num_devices) or
  /// num_devices for the coordinator.
  DeviceId self = 0;
  std::size_t num_devices = 0;
  /// Run nonce: both ends of every connection must present the same value
  /// in their kHello (a device from a stale run is rejected at accept).
  std::uint64_t epoch = 0;
  TransportKind kind = TransportKind::kTcp;
  /// TCP: this endpoint's pre-bound listener fd (-1 = do not listen — the
  /// coordinator only dials). UDS: ignored; the listener is bound at
  /// `socket_dir`/node-<self>.sock.
  int listen_fd = -1;
  /// TCP: loopback port of device d's listener, size num_devices.
  std::vector<std::uint16_t> peer_ports;
  /// UDS: directory holding node-<id>.sock for every device.
  std::string socket_dir;
  double connect_timeout_s = 10.0;
  /// Destructor-side bound on flushing queued frames (kStopped reports).
  double drain_timeout_s = 2.0;
  /// Devices expect an inbound coordinator connection; transport-only
  /// tests that build a coordinator-less device mesh set this to false.
  bool expect_coordinator = true;
};

/// Monotonic socket-layer counters (all frames, framing bytes included).
struct NetCounters {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t connects = 0;      ///< handshakes completed
  std::uint64_t disconnects = 0;   ///< established connections lost/closed
  std::uint64_t dial_retries = 0;  ///< reconnect attempts while dialing
};

class SocketTransport final : public rt::Transport {
 public:
  /// Starts the IO thread and begins dialing the lower-id peers in the
  /// background — the constructor never blocks, so several transports can
  /// be built sequentially in one process (tests) or concurrently across
  /// processes (the fleet). Call wait_ready() before using the mesh.
  explicit SocketTransport(SocketTransportOptions options);
  ~SocketTransport() override;

  /// Blocks until every expected peer connection is established. Throws
  /// CommError when a dial failed or `options.connect_timeout_s` elapsed
  /// with the mesh incomplete.
  void wait_ready();

  /// Peers this endpoint expects to be connected to once ready.
  std::size_t expected_peers() const;

  // ---- rt::Transport ----
  std::size_t size() const override { return k_; }
  std::shared_ptr<rt::PendingSend> isend(DeviceId src, DeviceId dst,
                                         Message msg) override;
  void send_nonblocking(DeviceId src, DeviceId dst, Message msg) override;
  Message recv_match(DeviceId dst, DeviceId from, std::int64_t tag,
                     double timeout_s) override;
  std::optional<Message> recv_any(DeviceId dst, double timeout_s) override;
  bool handshake(DeviceId src, DeviceId dst, double timeout_s) override;
  void kill(DeviceId id) override;
  bool alive(DeviceId id) const override;
  std::size_t purge_stale(DeviceId dst,
                          std::int64_t min_collective_id) override;
  void account(DeviceId src, DeviceId dst, std::size_t bytes) override;
  comm::VolumeCounters volume() const override;
  rt::BufferPool& pool() override { return pool_; }
  double link_delay_s(DeviceId, DeviceId, std::size_t) const override {
    return 0.0;  // sockets move at real network speed
  }

  // ---- net extras (control plane, liveness, abort propagation) ----
  DeviceId self() const { return self_; }
  DeviceId coordinator_id() const { return static_cast<DeviceId>(k_); }

  /// Sends a kControl body (net/codec.hpp) to `endpoint` (a device id or
  /// coordinator_id()). False when the link is down — the frame is dropped.
  bool send_control(DeviceId endpoint, std::span<const std::uint8_t> body);
  /// Invoked on the IO thread for every inbound kControl body.
  ///
  /// Handler contract (all three setters): the handler runs under the
  /// transport mutex and must not re-enter the transport. Frames that
  /// arrive before a handler is registered are queued and replayed, in
  /// order, when it is (see pending_* below). Setting nullptr detaches
  /// AND synchronizes — once the setter returns, no invocation is in
  /// flight, so objects the handler captured may be destroyed. Owners of
  /// captured state must detach before that state dies (net/runner.cpp's
  /// HandlerReset).
  void set_control_handler(
      std::function<void(DeviceId src, std::vector<std::uint8_t> body)> fn);

  /// Device side: one heartbeat frame to the coordinator (drops silently
  /// when the link is down — the missing beat IS the signal).
  void send_beat();
  /// Coordinator side: invoked on the IO thread per inbound kBeat.
  void set_beat_handler(std::function<void(DeviceId)> fn);

  /// Coordinator side: pushes a kCancel for `collective_id` to `dst`.
  void send_cancel(DeviceId dst, std::int64_t collective_id);
  /// Device side: invoked on the IO thread per inbound kCancel.
  void set_cancel_handler(std::function<void(std::int64_t)> fn);

  /// Device side: true while the connection to the coordinator is up.
  bool coordinator_link_up() const;

  NetCounters counters() const;
  /// Adds the net.* counters to `registry`.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Conn {
    int fd = -1;
    DeviceId peer = 0;
    bool peer_known = false;   ///< dialed, or kHello received
    bool established = false;  ///< hello exchange complete
    bool closed = false;
    std::vector<std::uint8_t> rx;  // IO-thread-owned reassembly buffer
    std::deque<std::vector<std::uint8_t>> tx;  // guarded by mu_
    std::size_t tx_offset = 0;                 // bytes of tx.front() written
    std::size_t tx_bytes = 0;
  };

  struct Envelope {
    Message msg;
    DeviceId from_endpoint = 0;  ///< connection peer (for the ack path)
    std::uint64_t seq = 0;
    bool want_ack = false;
  };

  static constexpr std::size_t kMaxQueuedBytes = std::size_t{64} << 20;

  void io_loop();
  void wake_io() const;
  void handle_readable(std::size_t conn_index);
  void dispatch_frame(std::size_t conn_index, const rt::FrameHeader& header,
                      std::span<const std::uint8_t> body);
  /// Closes the connection and resolves everything pending on it
  /// (in-flight rendezvous sends drop, waiters wake).
  void drop_conn_locked(std::size_t conn_index);
  /// Appends a frame to the peer's queue; false when the link is down.
  bool enqueue_frame(DeviceId endpoint, std::vector<std::uint8_t> frame,
                     bool allow_block);
  bool establish_locked(std::size_t conn_index, DeviceId peer);
  void send_ack(DeviceId endpoint, rt::FrameType type, std::uint64_t seq);
  void dial_peers();
  std::size_t established_count_locked() const;
  void count_device(DeviceId id) const;

  const std::size_t k_;
  const DeviceId self_;
  const SocketTransportOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // established/backpressure/pong waiters
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<int> conn_of_;  ///< endpoint id -> conns_ index, -1 = none
  std::unordered_map<std::uint64_t,
                     std::pair<std::shared_ptr<rt::PendingSend>, DeviceId>>
      pending_;
  std::unordered_set<std::uint64_t> pongs_;
  std::uint64_t next_seq_ = 1;
  bool self_alive_ = true;
  bool stopping_ = false;
  std::string dial_error_;  ///< non-empty = the background dial failed

  rt::Mailbox<Envelope> inbox_;
  rt::BufferPool pool_;

  std::vector<std::atomic<std::size_t>> sent_;
  std::vector<std::atomic<std::size_t>> received_;

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> dial_retries_{0};

  std::function<void(DeviceId, std::vector<std::uint8_t>)> control_handler_;
  std::function<void(DeviceId)> beat_handler_;
  std::function<void(std::int64_t)> cancel_handler_;
  // Frames that arrived before the matching handler was registered. A TCP
  // listener is pre-bound by the fleet parent, so the coordinator's first
  // commands can already sit in our socket buffer when the IO thread starts
  // — i.e. before run_hadfl_node had a chance to call set_control_handler.
  // Dropping them would wedge the run; instead they queue here and the
  // set_*_handler call drains them under mu_ (so a concurrently arriving
  // frame cannot overtake the backlog).
  std::vector<std::pair<DeviceId, std::vector<std::uint8_t>>> pending_control_;
  std::vector<DeviceId> pending_beats_;
  std::vector<std::int64_t> pending_cancels_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread io_thread_;
  std::thread dial_thread_;
};

}  // namespace hadfl::net
