#include "net/runner.hpp"


#include <unistd.h>

#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/round_logic.hpp"
#include "net/codec.hpp"
#include "net/process_fleet.hpp"
#include "nn/param_utils.hpp"
#include "rt/coordinator.hpp"
#include "rt/mailbox.hpp"
#include "rt/worker.hpp"

namespace hadfl::net {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A fresh per-run nonce: every process of the run presents it in its
/// kHello, so a stray node left over from a previous run on the same ports
/// or socket paths is rejected at the handshake.
std::uint64_t fresh_nonce(std::uint64_t seed) {
  const auto ticks = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(::getpid()) << 32) ^
                    ticks ^ 0x9e3779b97f4a7c15ULL;
  // splitmix64 finalizer — spreads the pid/tick bits over the whole word.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

/// Detaches every transport handler on scope exit. The handlers capture
/// stack objects (the failure detector, the coordinator/worker IO
/// mailboxes) that are destroyed before the transport and its IO thread
/// are — without the reset, a late frame dispatched during unwind would
/// run a handler over dead state. set_*_handler(nullptr) synchronizes
/// with dispatch (see net/transport.hpp), so after this destructor runs
/// no handler invocation is in flight.
struct HandlerReset {
  SocketTransport& transport;
  ~HandlerReset() {
    transport.set_control_handler(nullptr);
    transport.set_beat_handler(nullptr);
    transport.set_cancel_handler(nullptr);
  }
};

// ---------------------------------------------------------------------------
// Coordinator-side endpoints.

/// Control plane over the socket mesh: Commands go out as kControl frames,
/// Reports come back through a mailbox the transport's IO thread fills.
/// Only the coordinator thread calls the polling side, so the late-report
/// stash needs no lock.
class NetCoordinatorIo final : public rt::CoordinatorIo {
 public:
  NetCoordinatorIo(SocketTransport& transport, std::size_t k)
      : transport_(transport), closed_(k, false) {}

  bool post(rt::DeviceId d, rt::Command command) override {
    if (d >= closed_.size() || closed_[d]) return false;
    return transport_.send_control(d, encode_command(command));
  }

  std::optional<rt::Report> poll_report(double timeout_s) override {
    const double deadline = now_s() + timeout_s;
    for (;;) {
      std::optional<rt::Report> r = take(deadline);
      // kGetState answers are consumed by poll_state_report below; one that
      // surfaces here is a straggler from a device that answered after the
      // oracle's deadline — drop it rather than confuse the round loop.
      if (r.has_value() && r->kind == rt::ReportKind::kStateDone) continue;
      return r;
    }
  }

  void close_channel(rt::DeviceId d) override {
    if (d >= closed_.size() || closed_[d]) return;
    closed_[d] = true;
    // Fencing over sockets = dropping the connection: the worker sees its
    // command channel gone (coordinator_link_up() false) and exits.
    transport_.kill(d);
  }

  void cancel_collective(const std::vector<rt::DeviceId>& members,
                         std::int64_t cid) override {
    // Remote workers blocked mid-collective cannot see the coordinator's
    // cancel flag; a kCancel frame raises their local copy (NetWorkerIo).
    for (rt::DeviceId m : members) transport_.send_cancel(m, cid);
  }

  /// IO-thread side: a decoded inbound report.
  void deliver(rt::Report report) { reports_.push(std::move(report)); }

  /// Oracle side: next kStateDone within the deadline; every other report
  /// is stashed for poll_report (order-preserving).
  std::optional<rt::Report> poll_state_report(double deadline) {
    for (;;) {
      const double left = deadline - now_s();
      if (left <= 0.0) return std::nullopt;
      std::optional<rt::Report> r = reports_.pop(left);
      if (!r.has_value()) return std::nullopt;
      if (r->kind == rt::ReportKind::kStateDone) return r;
      stash_.push_back(std::move(*r));
    }
  }

 private:
  std::optional<rt::Report> take(double deadline) {
    if (!stash_.empty()) {
      rt::Report r = std::move(stash_.front());
      stash_.pop_front();
      return r;
    }
    const double left = deadline - now_s();
    return reports_.pop(left > 0.0 ? left : 0.0);
  }

  SocketTransport& transport_;
  std::vector<bool> closed_;
  rt::Mailbox<rt::Report> reports_;
  std::deque<rt::Report> stash_;  ///< coordinator-thread only
};

/// Device-state reads over the wire: a kGetState fan-out, folded exactly
/// like core::mean_state_of (double accumulation in ids order, weight 1/n,
/// one final cast) so a full-strength answer is bit-identical to the
/// inproc oracle's.
class NetDeviceOracle final : public rt::DeviceOracle {
 public:
  NetDeviceOracle(NetCoordinatorIo& io, const std::vector<float>& init_state,
                  double timeout_s)
      : io_(io), init_state_(init_state), timeout_s_(timeout_s) {}

  std::vector<float> mean_state(
      const std::vector<rt::DeviceId>& ids) override {
    std::unordered_set<rt::DeviceId> asked;
    for (rt::DeviceId id : ids) {
      rt::Command cmd;
      cmd.kind = rt::CmdKind::kGetState;
      if (io_.post(id, std::move(cmd))) asked.insert(id);
    }
    std::unordered_map<rt::DeviceId, std::vector<float>> answers;
    const double deadline = now_s() + timeout_s_;
    while (answers.size() < asked.size()) {
      std::optional<rt::Report> r = io_.poll_state_report(deadline);
      if (!r.has_value()) break;
      if (asked.count(r->device) != 0 && answers.count(r->device) == 0) {
        answers.emplace(r->device, std::move(r->aggregate));
      }
    }
    if (answers.empty()) return init_state_;  // nobody reachable: see caller
    nn::StateAccumulator acc;
    acc.reset(answers.begin()->second.size());
    const double w = 1.0 / static_cast<double>(answers.size());
    for (rt::DeviceId id : ids) {
      auto it = answers.find(id);
      if (it != answers.end()) acc.accumulate(it->second, w);
    }
    return acc.materialize();
  }

 private:
  NetCoordinatorIo& io_;
  const std::vector<float>& init_state_;
  double timeout_s_;
};

// ---------------------------------------------------------------------------
// Device-side endpoints.

/// Worker endpoints in a node process: commands arrive as kControl frames
/// (decoded on the transport's IO thread into a mailbox), reports go back
/// the same way, beats are kBeat frames. The coordinator's shared cancel
/// flag cannot cross a process boundary, so each sync command gets a local
/// flag that a kCancel frame raises — and because the frame can overtake
/// the worker's pop of the command it aborts, cancels for not-yet-seen
/// collectives are remembered and applied on arrival.
class NetWorkerIo final : public rt::WorkerIo {
 public:
  explicit NetWorkerIo(SocketTransport& transport) : transport_(transport) {
    transport_.set_control_handler(
        [this](rt::DeviceId src, std::vector<std::uint8_t> body) {
          if (src != transport_.coordinator_id() || body.empty()) return;
          if (body[0] != kCtrlCommand) return;
          rt::Command cmd;
          if (!decode_command(
                  std::span<const std::uint8_t>(body).subspan(1), cmd)) {
            HADFL_DEBUG("net: node " << transport_.self()
                                     << " dropping malformed command frame");
            return;
          }
          attach_cancel(cmd);
          commands_.push(std::move(cmd));
        });
    transport_.set_cancel_handler(
        [this](std::int64_t cid) { raise_cancel(cid); });
  }

  std::optional<rt::Command> next_command(double timeout_s) override {
    return commands_.pop(timeout_s);
  }

  bool command_channel_closed() override {
    return !transport_.coordinator_link_up();
  }

  void send_report(rt::Report report) override {
    // A failed send means the coordinator link just died; the worker loop
    // notices through command_channel_closed() on its next poll.
    transport_.send_control(transport_.coordinator_id(),
                            encode_report(report));
  }

  void beat() override { transport_.send_beat(); }

 private:
  void attach_cancel(rt::Command& cmd) {
    if (cmd.kind != rt::CmdKind::kSync &&
        cmd.kind != rt::CmdKind::kInterSync) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    // Collective ids grow monotonically; older entries can never be
    // cancelled again, so a new command prunes everything staler than it.
    for (auto it = flags_.begin(); it != flags_.end();) {
      it = it->first < cmd.collective_id ? flags_.erase(it) : std::next(it);
    }
    for (auto it = pre_cancelled_.begin(); it != pre_cancelled_.end();) {
      it = *it < cmd.collective_id ? pre_cancelled_.erase(it) : std::next(it);
    }
    const bool doomed = pre_cancelled_.erase(cmd.collective_id) != 0;
    auto flag = std::make_shared<std::atomic<bool>>(doomed);
    flags_[cmd.collective_id] = flag;
    cmd.cancel = std::move(flag);
  }

  void raise_cancel(std::int64_t cid) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flags_.find(cid);
    if (it != flags_.end()) {
      it->second->store(true, std::memory_order_relaxed);
    } else {
      pre_cancelled_.insert(cid);
    }
  }

  SocketTransport& transport_;
  rt::Mailbox<rt::Command> commands_;
  std::mutex mu_;
  std::unordered_map<std::int64_t, std::shared_ptr<std::atomic<bool>>>
      flags_;
  std::unordered_set<std::int64_t> pre_cancelled_;
};

}  // namespace

// ---------------------------------------------------------------------------

rt::RtResult run_hadfl_net(const fl::SchemeContext& ctx,
                           const NetRunConfig& config) {
  HADFL_CHECK_ARG(ctx.partition.size() == ctx.cluster.size(),
                  "partition count != device count");
  HADFL_CHECK_ARG(
      config.rt.hadfl.compression == core::SyncCompression::kNone ||
          config.rt.sync_chunks == 0 ||
          config.rt.sync_chunks == config.rt.hadfl.sync_chunks,
      "compressed runs must take their chunk grid from hadfl.sync_chunks "
      "(leave RtConfig::sync_chunks at 0) so all backends encode identical "
      "chunks");
  HADFL_CHECK_ARG(
      !config.rt.hadfl.adaptive.enabled || config.rt.sync_chunks == 0,
      "adaptive runs own the chunk grid (leave RtConfig::sync_chunks at 0; "
      "seed via hadfl.sync_chunks)");
  HADFL_CHECK_ARG(!config.node_binary.empty(),
                  "net backend needs a node binary path");
  const std::size_t k = ctx.cluster.size();

  // Same RNG split sequence as the simulator and the inproc rt backend —
  // the device processes derive the identical setup from the same seed, the
  // coordinator keeps the post-init stream for selection/ring draws.
  Rng rng(ctx.config.seed);
  core::DeviceSetup setup = core::init_devices(ctx, config.rt.hadfl, rng);

  const std::uint64_t nonce = config.run_nonce != 0
                                  ? config.run_nonce
                                  : fresh_nonce(ctx.config.seed);

  FleetOptions fleet_options;
  fleet_options.node_binary = config.node_binary;
  fleet_options.common_args = config.node_args;
  fleet_options.kind = config.kind;
  fleet_options.num_devices = k;
  fleet_options.run_nonce = nonce;
  fleet_options.shutdown_grace_s = config.shutdown_grace_s;
  ProcessFleet fleet(fleet_options);
  fleet.spawn();

  SocketTransportOptions topts;
  topts.self = static_cast<rt::DeviceId>(k);
  topts.num_devices = k;
  topts.epoch = nonce;
  topts.kind = config.kind;
  topts.peer_ports = fleet.ports();
  topts.socket_dir = fleet.socket_dir();
  topts.connect_timeout_s = config.connect_timeout_s;
  SocketTransport transport(topts);

  rt::FailureDetector detector(
      k, rt::HeartbeatConfig{config.rt.heartbeat_timeout_s});
  NetCoordinatorIo io(transport, k);
  HandlerReset handler_reset{transport};  // before `io`/`detector` die
  // Handlers go in before wait_ready: frames can arrive the moment a
  // connection establishes.
  transport.set_beat_handler(
      [&detector](rt::DeviceId d) { detector.beat(d); });
  transport.set_control_handler(
      [&io](rt::DeviceId src, std::vector<std::uint8_t> body) {
        if (body.empty() || body[0] != kCtrlReport) return;
        rt::Report report;
        if (!decode_report(std::span<const std::uint8_t>(body).subspan(1),
                           report)) {
          return;
        }
        // The report's device claim must match the connection it came in
        // on — a control frame cannot speak for another node.
        if (report.device != src) return;
        io.deliver(std::move(report));
      });
  transport.wait_ready();
  // Prime the heartbeat table at mesh formation: a node beats from its
  // first command poll, moments from now — without the prime the detector
  // would report every device dead in the gap.
  for (std::size_t d = 0; d < k; ++d) {
    detector.beat(static_cast<rt::DeviceId>(d));
  }

  // Coordinator-side telemetry only: device spans/counters live in the
  // worker processes and stay there — the cross-process pieces that do come
  // home are the kStopped byte/pool stats merged below.
  std::unique_ptr<obs::SpanRecorder> span_recorder;
  std::unique_ptr<obs::MetricsRegistry> metrics_registry;
  rt::CoordinatorTelemetry coord_telemetry;
  coord_telemetry.coord_track = k;
  if (config.rt.telemetry) {
    span_recorder = std::make_unique<obs::SpanRecorder>(
        k + 1, config.rt.telemetry_span_capacity);
    metrics_registry = std::make_unique<obs::MetricsRegistry>();
    coord_telemetry.rec = span_recorder.get();
    coord_telemetry.sync_latency = &metrics_registry->histogram(
        "sync.latency_s", obs::exponential_bounds(1e-4, 2.0, 18));
    coord_telemetry.abort_latency = &metrics_registry->histogram(
        "sync.abort_latency_s", obs::exponential_bounds(1e-4, 2.0, 18));
    coord_telemetry.selection_prob = &metrics_registry->histogram(
        "selection.probability",
        {0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0});
    coord_telemetry.metrics = metrics_registry.get();
    detector.attach_silence_histogram(&metrics_registry->histogram(
        "heartbeat.silence_s", obs::exponential_bounds(1e-4, 2.0, 16)));
  }

  NetDeviceOracle oracle(io, setup.init_state,
                         config.rt.collective_timeout_s);
  rt::CoordinatorEnv env;
  env.transport = &transport;
  env.detector = &detector;
  env.io = &io;
  env.oracle = &oracle;
  env.telemetry = coord_telemetry;
  env.scheme_name = "hadfl-net";
  rt::RtResult result =
      rt::run_hadfl_coordinator(ctx, config.rt, setup, rng, env);

  // ---- Cross-process result merges. Each process counted its own slots;
  // the workers shipped theirs home on kStopped (devices that died mid-run
  // contribute nothing — their counters died with them), the coordinator's
  // transport holds its own sends plus the account() calls and the
  // spoofed-src repair warnings.
  comm::VolumeCounters volume = transport.volume();
  rt::BufferPool::Stats pool = transport.pool().stats();
  for (std::size_t d = 0; d < k && d < result.device_stats.size(); ++d) {
    const rt::DeviceRunStats& stats = result.device_stats[d];
    if (!stats.reported) continue;
    volume.sent[d] += stats.sent_bytes;
    volume.received[d] += stats.received_bytes;
    pool.hits += stats.pool.hits;
    pool.misses += stats.pool.misses;
    pool.high_water += stats.pool.high_water;  // sum of per-process peaks
  }
  result.scheme.volume = std::move(volume);
  result.pool_stats = pool;

  const std::size_t abnormal = fleet.shutdown();
  if (abnormal != 0) {
    HADFL_WARN("net: " << abnormal << " node process(es) exited abnormally");
  }

  if (span_recorder != nullptr) {
    result.spans_dropped = span_recorder->dropped();
    result.timeline = span_recorder->drain();
  }
  if (metrics_registry != nullptr) {
    metrics_registry->counter("rt.deaths_detected")
        .add(result.deaths_detected);
    metrics_registry->counter("rt.ring_repairs")
        .add(result.extras.ring_repairs);
    metrics_registry->counter("buffer_pool.hits").add(result.pool_stats.hits);
    metrics_registry->counter("buffer_pool.misses")
        .add(result.pool_stats.misses);
    metrics_registry->counter("buffer_pool.high_water")
        .add(result.pool_stats.high_water);
    metrics_registry->counter("telemetry.spans_dropped")
        .add(result.spans_dropped);
    metrics_registry->counter("net.abnormal_exits").add(abnormal);
    transport.export_metrics(*metrics_registry);
    result.metrics = metrics_registry->snapshot();
  }
  return result;
}

int run_hadfl_node(const fl::SchemeContext& ctx, const rt::RtConfig& config,
                   const NodeOptions& options) {
  const std::size_t k = ctx.cluster.size();
  HADFL_CHECK_ARG(options.node_id < k, "node id out of range");
  HADFL_CHECK_ARG(ctx.partition.size() == k,
                  "partition count != device count");

  // Rebuild the run's DeviceSetup from the shared seed — the heavy part
  // (model init, batch iterators) happens before the transport goes up, so
  // "connected" means "about to start beating" on the coordinator's side.
  Rng rng(ctx.config.seed);
  core::DeviceSetup setup = core::init_devices(ctx, config.hadfl, rng);

  SocketTransportOptions topts;
  topts.self = options.node_id;
  topts.num_devices = k;
  topts.epoch = options.run_nonce;
  topts.kind = options.kind;
  topts.listen_fd = options.listen_fd;
  topts.peer_ports = options.tcp_ports;
  topts.socket_dir = options.socket_dir;
  topts.connect_timeout_s = options.connect_timeout_s;
  SocketTransport transport(topts);
  NetWorkerIo io(transport);
  HandlerReset handler_reset{transport};  // before `io` dies
  transport.wait_ready();

  rt::WorkerEnv env;
  env.id = options.node_id;
  env.dev = &setup.devices[options.node_id];
  env.transport = &transport;
  env.io = &io;
  env.config = &config;
  env.iter_time = ctx.cluster.iteration_time(options.node_id);
  const bool orderly = rt::run_device_worker(env);

  if (!orderly && transport.alive(options.node_id)) {
    // Injected *silent* death: the endpoint stays open and only the missing
    // heartbeats give the death away — exiting now would close the sockets
    // and reveal it early. Linger until the coordinator fences us (drops
    // the connection) or disappears.
    while (transport.coordinator_link_up()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  // Orderly exits drain queued frames (the kStopped report) in the
  // transport destructor; injected non-silent deaths already closed the
  // endpoint like the crash they emulate. Either way the fault run worked
  // as scripted — exit clean.
  return 0;
}

}  // namespace hadfl::net
