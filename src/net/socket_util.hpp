// Thin POSIX socket helpers for the net backend: loopback TCP and
// Unix-domain listeners, retrying dialers (the fleet's processes start
// concurrently, so a dialer may race its peer's bind), and fd utilities.
// All functions throw hadfl::CommError on unrecoverable OS errors.
#pragma once

#include <cstdint>
#include <string>

namespace hadfl::net {

void set_nonblocking(int fd);
void set_cloexec(int fd, bool on);
// Disables Nagle on a TCP socket. No-op (EOPNOTSUPP ignored) on AF_UNIX,
// so the accept path can call it without knowing the transport kind.
void set_tcp_nodelay(int fd);
void close_fd(int fd) noexcept;

struct TcpListener {
  int fd = -1;
  std::uint16_t port = 0;  ///< the kernel-assigned ephemeral port
};

/// Binds a loopback (127.0.0.1) listener on an ephemeral port.
TcpListener make_tcp_listener();

/// Binds a Unix-domain listener at `path` (unlinking any stale socket).
int make_uds_listener(const std::string& path);

/// Connects to 127.0.0.1:`port`, retrying refused connections until
/// `timeout_s` (the listener is in another just-started process). Returns a
/// connected blocking fd. `retries`, when given, accumulates the number of
/// re-dial attempts.
int dial_tcp(std::uint16_t port, double timeout_s,
             std::uint64_t* retries = nullptr);

/// Connects to the Unix-domain socket at `path`, retrying while the peer
/// has not bound yet. Returns a connected blocking fd.
int dial_uds(const std::string& path, double timeout_s,
             std::uint64_t* retries = nullptr);

/// Writes all of `data` to a blocking fd; throws CommError on failure.
void write_all(int fd, const void* data, std::size_t n);

/// Creates a unique temporary directory for Unix-domain sockets
/// (/tmp/hadfl-net-XXXXXX). The caller removes it when done.
std::string make_socket_dir();

/// Best-effort recursive removal of a socket directory.
void remove_socket_dir(const std::string& dir) noexcept;

/// Removes leftover /tmp/hadfl-net-* directories owned by this user whose
/// mtime is at least `max_age_s` old — a run killed before ~ProcessFleet
/// (SIGKILL, _exit, crash) leaks its dir, and mkdtemp never reuses the
/// name, so they accumulate forever. Dirs younger than the threshold are
/// never touched (a concurrent run's live dir must survive the sweep).
/// Returns the number of directories removed.
std::size_t sweep_stale_socket_dirs(double max_age_s = 3600.0) noexcept;

}  // namespace hadfl::net
