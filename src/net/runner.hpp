// Multi-process execution backend: the same HADFL pipeline as rt/runner.hpp
// (shared coordinator + shared device worker), but with every device in its
// own OS process and all traffic on real sockets.
//
// `run_hadfl_net` is the coordinator half, called from `hadfl_run
// --backend=net`: it spawns K `hadfl_node` processes (net/process_fleet.hpp),
// joins the socket mesh as endpoint K (net/transport.hpp), drives the
// shared `rt::run_hadfl_coordinator` through control frames
// (net/codec.hpp), and merges each process's byte/pool counters — shipped
// home on the kStopped reports — into the usual RtResult.
//
// `run_hadfl_node` is the device half, hosted by the `hadfl_node` binary:
// it rebuilds the identical run context from the forwarded scenario
// arguments (the caller does that part), derives the same DeviceSetup from
// the same seed, joins the mesh as endpoint d, and runs the shared
// `rt::run_device_worker` loop until kStop or an injected death.
//
// Determinism: the algorithm draws (selection, rings, broadcast targets)
// all happen on the coordinator from the shared seed, and the aggregation
// fold is the order-pinned core::WeightedRingFold — so a seeded net run
// produces the bit-identical final model of the inproc rt run and the
// simulator (tests/test_net.cpp pins this across TCP and UDS).
//
// Limits vs the inproc backend: `time_scale` is ignored (sockets move at
// real network speed) and lossy sync compression is rejected — the codec
// pricing probe needs device-addressable reference states, which only the
// in-process oracle has.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/scheme.hpp"
#include "net/transport.hpp"
#include "rt/config.hpp"

namespace hadfl::net {

struct NetRunConfig {
  rt::RtConfig rt;                 ///< shared algorithm/runtime knobs
  TransportKind kind = TransportKind::kTcp;
  /// Path of the hadfl_node binary the fleet execs.
  std::string node_binary;
  /// Scenario arguments forwarded to every node so it rebuilds the
  /// identical context (exp/cli_setup.hpp builds this list).
  std::vector<std::string> node_args;
  double connect_timeout_s = 10.0;
  double shutdown_grace_s = 5.0;
  /// Run nonce stamped into every kHello; 0 = derive a fresh one. All
  /// processes of one run must agree (the fleet forwards it).
  std::uint64_t run_nonce = 0;
};

/// Coordinator process: fleet + mesh + shared coordinator + result merge.
rt::RtResult run_hadfl_net(const fl::SchemeContext& ctx,
                           const NetRunConfig& config);

/// Endpoint wiring a node process receives on its command line
/// (net/process_fleet.cpp puts it there).
struct NodeOptions {
  rt::DeviceId node_id = 0;
  std::uint64_t run_nonce = 0;
  TransportKind kind = TransportKind::kTcp;
  int listen_fd = -1;                    ///< TCP: inherited listener
  std::vector<std::uint16_t> tcp_ports;  ///< TCP: all nodes' ports
  std::string socket_dir;                ///< UDS: the fleet's socket dir
  double connect_timeout_s = 10.0;
};

/// Device process: joins the mesh and runs the worker loop. Returns the
/// process exit code (0 on an orderly stop *and* after an injected death —
/// fault runs are expected runs; a real crash never gets here).
int run_hadfl_node(const fl::SchemeContext& ctx, const rt::RtConfig& config,
                   const NodeOptions& options);

}  // namespace hadfl::net
