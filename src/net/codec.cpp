#include "net/codec.hpp"

#include "rt/wire_format.hpp"

namespace hadfl::net {

namespace {

using rt::ByteReader;
using rt::ByteWriter;

void put_f32s(ByteWriter& w, const std::vector<float>& v) {
  w.u64(v.size());
  if (!v.empty()) w.bytes(v.data(), v.size() * sizeof(float));
}

void put_f64s(ByteWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (double x : v) w.f64(x);
}

void put_ids(ByteWriter& w, const std::vector<rt::DeviceId>& v) {
  w.u64(v.size());
  for (rt::DeviceId id : v) w.u32(static_cast<std::uint32_t>(id));
}

/// Validates a decoded element count against the bytes actually present
/// before resizing — a corrupt count must not drive an allocation.
bool take_count(ByteReader& r, std::size_t elem_bytes, std::size_t& out) {
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > r.remaining() ||
      count * elem_bytes > r.remaining()) {
    return false;
  }
  out = static_cast<std::size_t>(count);
  return true;
}

bool get_f32s(ByteReader& r, std::vector<float>& v) {
  std::size_t count = 0;
  if (!take_count(r, sizeof(float), count)) return false;
  v.resize(count);
  if (count != 0) r.bytes(v.data(), count * sizeof(float));
  return r.ok();
}

bool get_f64s(ByteReader& r, std::vector<double>& v) {
  std::size_t count = 0;
  if (!take_count(r, sizeof(double), count)) return false;
  v.resize(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = r.f64();
  return r.ok();
}

bool get_ids(ByteReader& r, std::vector<rt::DeviceId>& v) {
  std::size_t count = 0;
  if (!take_count(r, sizeof(std::uint32_t), count)) return false;
  v.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    v[i] = static_cast<rt::DeviceId>(r.u32());
  }
  return r.ok();
}

}  // namespace

std::vector<std::uint8_t> encode_command(const rt::Command& cmd) {
  std::vector<std::uint8_t> out;
  out.reserve(128 + cmd.state.size() * sizeof(float));
  ByteWriter w(out);
  w.u8(kCtrlCommand);
  w.u8(static_cast<std::uint8_t>(cmd.kind));
  w.u64(cmd.steps);
  w.f64(cmd.learning_rate);
  w.f64(cmd.deadline_s);
  w.i64(cmd.die_after);
  w.u8(cmd.die_silently ? 1 : 0);
  put_f32s(w, cmd.state);
  w.f64(cmd.version_mean);
  put_ids(w, cmd.peers);
  w.u64(cmd.my_index);
  w.i64(cmd.collective_id);
  put_f64s(w, cmd.weights);
  w.u64(cmd.wire_bytes);
  w.u32(static_cast<std::uint32_t>(cmd.peer));
  w.u64(cmd.chunks);
  w.u8(cmd.delta ? 1 : 0);
  w.i64(cmd.ref_epoch);
  w.u8(static_cast<std::uint8_t>(cmd.codec));
  w.f64(cmd.codec_ratio);
  return out;
}

std::vector<std::uint8_t> encode_report(const rt::Report& report) {
  std::vector<std::uint8_t> out;
  out.reserve(128 + report.aggregate.size() * sizeof(float));
  ByteWriter w(out);
  w.u8(kCtrlReport);
  w.u32(static_cast<std::uint32_t>(report.device));
  w.u8(static_cast<std::uint8_t>(report.kind));
  w.u8(report.ok ? 1 : 0);
  w.f64(report.loss);
  w.f64(report.wall_s);
  w.u64(report.executed);
  w.f64(report.version);
  put_f32s(w, report.aggregate);
  put_ids(w, report.delivered);
  w.u64(report.sent_bytes);
  w.u64(report.received_bytes);
  w.u64(report.pool.hits);
  w.u64(report.pool.misses);
  w.u64(report.pool.high_water);
  w.i64(report.ref_epoch);
  return out;
}

bool decode_command(std::span<const std::uint8_t> body, rt::Command& out) {
  ByteReader r(body);
  out.kind = static_cast<rt::CmdKind>(r.u8());
  out.steps = static_cast<std::size_t>(r.u64());
  out.learning_rate = r.f64();
  out.deadline_s = r.f64();
  out.die_after = r.i64();
  out.die_silently = r.u8() != 0;
  if (!get_f32s(r, out.state)) return false;
  out.version_mean = r.f64();
  if (!get_ids(r, out.peers)) return false;
  out.my_index = static_cast<std::size_t>(r.u64());
  out.collective_id = r.i64();
  if (!get_f64s(r, out.weights)) return false;
  out.wire_bytes = static_cast<std::size_t>(r.u64());
  out.peer = static_cast<rt::DeviceId>(r.u32());
  out.chunks = static_cast<std::size_t>(r.u64());
  out.delta = r.u8() != 0;
  out.ref_epoch = r.i64();
  out.codec = static_cast<comm::SyncCodec>(r.u8());
  out.codec_ratio = r.f64();
  out.cancel.reset();  // process-local; the receiver recreates it
  return r.ok() && r.remaining() == 0;
}

bool decode_report(std::span<const std::uint8_t> body, rt::Report& out) {
  ByteReader r(body);
  out.device = static_cast<rt::DeviceId>(r.u32());
  out.kind = static_cast<rt::ReportKind>(r.u8());
  out.ok = r.u8() != 0;
  out.loss = r.f64();
  out.wall_s = r.f64();
  out.executed = static_cast<std::size_t>(r.u64());
  out.version = r.f64();
  if (!get_f32s(r, out.aggregate)) return false;
  if (!get_ids(r, out.delivered)) return false;
  out.sent_bytes = static_cast<std::size_t>(r.u64());
  out.received_bytes = static_cast<std::size_t>(r.u64());
  out.pool.hits = static_cast<std::size_t>(r.u64());
  out.pool.misses = static_cast<std::size_t>(r.u64());
  out.pool.high_water = static_cast<std::size_t>(r.u64());
  out.ref_epoch = r.i64();
  return r.ok() && r.remaining() == 0;
}

}  // namespace hadfl::net
