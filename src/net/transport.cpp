#include "net/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "net/socket_util.hpp"

namespace hadfl::net {

namespace {

using rt::DecodeStatus;
using rt::FrameHeader;
using rt::FrameType;
using rt::PendingSend;

constexpr double kPollSliceS = 0.05;

std::size_t accounted_bytes(const Message& msg) {
  return msg.wire_bytes != 0 ? msg.wire_bytes
                             : msg.payload.size() * sizeof(float);
}

std::string uds_path(const std::string& dir, DeviceId id) {
  return dir + "/node-" + std::to_string(id) + ".sock";
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions options)
    : k_(options.num_devices),
      self_(options.self),
      options_(std::move(options)),
      sent_(k_),
      received_(k_) {
  HADFL_CHECK_ARG(k_ > 0, "transport needs at least one device");
  HADFL_CHECK_ARG(self_ <= k_, "self id out of range");
  conn_of_.assign(k_ + 1, -1);
  for (auto& counter : sent_) counter.store(0, std::memory_order_relaxed);
  for (auto& counter : received_) counter.store(0, std::memory_order_relaxed);

  if (::pipe(wake_pipe_) != 0) {
    throw CommError("net: pipe: " + std::string(std::strerror(errno)));
  }
  set_nonblocking(wake_pipe_[0]);
  set_cloexec(wake_pipe_[0], true);
  set_cloexec(wake_pipe_[1], true);

  // Devices listen; the coordinator only dials.
  if (self_ < k_) {
    if (options_.kind == TransportKind::kUds) {
      listen_fd_ = make_uds_listener(uds_path(options_.socket_dir, self_));
    } else {
      listen_fd_ = options_.listen_fd;
      HADFL_CHECK_ARG(listen_fd_ >= 0,
                      "tcp device endpoint needs a listener fd");
    }
    set_nonblocking(listen_fd_);
    set_cloexec(listen_fd_, true);
  }

  io_thread_ = std::thread([this] { io_loop(); });
  dial_thread_ = std::thread([this] { dial_peers(); });
}

SocketTransport::~SocketTransport() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  wake_io();
  if (dial_thread_.joinable()) dial_thread_.join();
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) {
      close_fd(conn->fd);
      conn->fd = -1;
    }
    // Anyone still waiting on a rendezvous gets the dropped resolution.
    for (auto& [seq, entry] : pending_) entry.first->resolve(false);
    pending_.clear();
  }
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  inbox_.close();
}

std::size_t SocketTransport::expected_peers() const {
  if (self_ == k_) return k_;  // coordinator: every device
  return (k_ - 1) + (options_.expect_coordinator ? 1 : 0);
}

void SocketTransport::dial_peers() {
  // Higher id dials lower: device d dials devices 0..d-1, the coordinator
  // (id K) dials every device. Each dial blocks with retry while the peer
  // process is still binding, then pushes a kHello and hands the fd to the
  // IO thread, which waits for the kHelloAck.
  std::uint64_t retries = 0;
  try {
    const std::size_t targets = std::min<std::size_t>(self_, k_);
    for (DeviceId target = 0; target < targets; ++target) {
      int fd = -1;
      if (options_.kind == TransportKind::kUds) {
        fd = dial_uds(uds_path(options_.socket_dir, target),
                      options_.connect_timeout_s, &retries);
      } else {
        HADFL_CHECK_ARG(options_.peer_ports.size() == k_,
                        "tcp transport needs one peer port per device");
        fd = dial_tcp(options_.peer_ports[target], options_.connect_timeout_s,
                      &retries);
      }
      set_cloexec(fd, true);
      std::vector<std::uint8_t> hello_body;
      rt::append_hello_body(
          hello_body,
          rt::HelloBody{static_cast<std::uint32_t>(self_), options_.epoch});
      std::vector<std::uint8_t> frame;
      append_frame(frame, FrameType::kHello, 0,
                   static_cast<std::uint32_t>(self_), hello_body);
      write_all(fd, frame.data(), frame.size());
      bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      set_nonblocking(fd);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
          close_fd(fd);
          return;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->peer = target;
        conn->peer_known = true;
        conns_.push_back(std::move(conn));
      }
      wake_io();
    }
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lock(mu_);
    dial_error_ = e.what();
    cv_.notify_all();
  }
  dial_retries_.fetch_add(retries, std::memory_order_relaxed);
}

void SocketTransport::wait_ready() {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(
                            options_.connect_timeout_s);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_until(lock, deadline, [this] {
    return !dial_error_.empty() ||
           established_count_locked() >= expected_peers();
  });
  if (!dial_error_.empty()) {
    throw CommError("net: endpoint " + std::to_string(self_) +
                    " dial failed: " + dial_error_);
  }
  if (established_count_locked() < expected_peers()) {
    throw CommError("net: endpoint " + std::to_string(self_) +
                    " mesh incomplete after " +
                    std::to_string(options_.connect_timeout_s) + "s (" +
                    std::to_string(established_count_locked()) + "/" +
                    std::to_string(expected_peers()) + " peers)");
  }
}

std::size_t SocketTransport::established_count_locked() const {
  std::size_t count = 0;
  for (const auto& conn : conns_) {
    if (conn->established && !conn->closed) ++count;
  }
  return count;
}

void SocketTransport::wake_io() const {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t written =
      ::write(wake_pipe_[1], &byte, 1);
}

void SocketTransport::count_device(DeviceId id) const {
  HADFL_CHECK_ARG(id < k_, "device id " << id << " out of range");
}

// ---------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------

void SocketTransport::io_loop() {
  bool stop_seen = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  std::vector<pollfd> fds;
  std::vector<int> fd_conn;  // conns_ index per pollfd entry; -1 = special
  for (;;) {
    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fd_conn.push_back(-1);
    if (listen_fd_ >= 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      fd_conn.push_back(-2);
    }
    bool tx_pending = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_ && !stop_seen) {
        stop_seen = true;
        drain_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options_.drain_timeout_s));
      }
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        Conn& conn = *conns_[i];
        if (conn.closed && conn.fd >= 0) {
          // Deferred close: only the IO thread releases fd numbers, so a
          // concurrently-polled fd can never be reused under us.
          close_fd(conn.fd);
          conn.fd = -1;
        }
        if (conn.fd < 0) continue;
        short events = POLLIN;
        if (conn.tx_bytes > 0) {
          events |= POLLOUT;
          tx_pending = true;
        }
        fds.push_back(pollfd{conn.fd, events, 0});
        fd_conn.push_back(static_cast<int>(i));
      }
    }
    if (stop_seen &&
        (!tx_pending ||
         std::chrono::steady_clock::now() >= drain_deadline)) {
      return;
    }
    const int ready = ::poll(fds.data(), fds.size(),
                             static_cast<int>(kPollSliceS * 1000));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (std::size_t p = 0; p < fds.size(); ++p) {
      if (fds[p].revents == 0) continue;
      if (fd_conn[p] == -1) {  // wake pipe
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fd_conn[p] == -2) {  // listener
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking(fd);
          set_cloexec(fd, true);
          set_tcp_nodelay(fd);
          std::lock_guard<std::mutex> lock(mu_);
          auto conn = std::make_unique<Conn>();
          conn->fd = fd;
          conns_.push_back(std::move(conn));
        }
        continue;
      }
      const auto ci = static_cast<std::size_t>(fd_conn[p]);
      if (fds[p].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Flush anything already received before tearing down — the peer
        // may have written (e.g. its kStopped report) and then exited.
        if (fds[p].revents & POLLIN) handle_readable(ci);
        std::lock_guard<std::mutex> lock(mu_);
        drop_conn_locked(ci);
        continue;
      }
      if (fds[p].revents & POLLIN) handle_readable(ci);
      if (fds[p].revents & POLLOUT) {
        std::unique_lock<std::mutex> lock(mu_);
        Conn& conn = *conns_[ci];
        while (!conn.closed && !conn.tx.empty()) {
          const std::vector<std::uint8_t>& front = conn.tx.front();
          const ssize_t written =
              ::write(conn.fd, front.data() + conn.tx_offset,
                      front.size() - conn.tx_offset);
          if (written < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
              break;
            }
            drop_conn_locked(ci);
            break;
          }
          conn.tx_offset += static_cast<std::size_t>(written);
          if (conn.tx_offset == front.size()) {
            conn.tx_bytes -= front.size();
            conn.tx.pop_front();
            conn.tx_offset = 0;
          }
        }
        if (conn.tx_bytes < kMaxQueuedBytes) cv_.notify_all();
      }
    }
  }
}

void SocketTransport::handle_readable(std::size_t conn_index) {
  // Conn objects are heap-stable (unique_ptr), but the conns_ vector itself
  // may be concurrently grown by the dial thread — index it under the lock.
  Conn* conn_ptr = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_ptr = conns_[conn_index].get();
  }
  Conn& conn = *conn_ptr;
  std::uint8_t buf[64 * 1024];
  bool peer_gone = false;
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.rx.insert(conn.rx.end(), buf, buf + n);
      bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    peer_gone = true;  // EOF or hard error — process what arrived first
    break;
  }
  std::size_t offset = 0;
  for (;;) {
    FrameHeader header;
    const std::span<const std::uint8_t> rest(conn.rx.data() + offset,
                                             conn.rx.size() - offset);
    const DecodeStatus status = rt::decode_frame_header(rest, header);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kError) {
      HADFL_DEBUG("net: endpoint " << self_
                                   << ": malformed frame header, dropping "
                                      "connection");
      std::lock_guard<std::mutex> lock(mu_);
      drop_conn_locked(conn_index);
      return;
    }
    if (rest.size() < rt::kFrameHeaderBytes + header.body_len) break;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    dispatch_frame(conn_index, header,
                   rest.subspan(rt::kFrameHeaderBytes, header.body_len));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn.closed) return;  // dispatch dropped it (bad hello, ...)
    }
    offset += rt::kFrameHeaderBytes + header.body_len;
  }
  if (offset > 0) {
    conn.rx.erase(conn.rx.begin(),
                  conn.rx.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  if (peer_gone) {
    std::lock_guard<std::mutex> lock(mu_);
    drop_conn_locked(conn_index);
  }
}

bool SocketTransport::establish_locked(std::size_t conn_index,
                                       DeviceId peer) {
  Conn& conn = *conns_[conn_index];
  if (peer > k_ || peer == self_ || conn_of_[peer] != -1) return false;
  conn.peer = peer;
  conn.peer_known = true;
  conn.established = true;
  conn_of_[peer] = static_cast<int>(conn_index);
  connects_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SocketTransport::dispatch_frame(std::size_t conn_index,
                                     const FrameHeader& header,
                                     std::span<const std::uint8_t> body) {
  Conn* conn_ptr = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_ptr = conns_[conn_index].get();
  }
  Conn& conn = *conn_ptr;
  switch (header.type) {
    case FrameType::kHello: {
      rt::HelloBody hello;
      if (!rt::decode_hello_body(body, hello) ||
          hello.epoch != options_.epoch) {
        std::lock_guard<std::mutex> lock(mu_);
        drop_conn_locked(conn_index);
        return;
      }
      std::vector<std::uint8_t> ack_body;
      rt::append_hello_body(
          ack_body,
          rt::HelloBody{static_cast<std::uint32_t>(self_), options_.epoch});
      std::vector<std::uint8_t> frame;
      append_frame(frame, FrameType::kHelloAck, 0,
                   static_cast<std::uint32_t>(self_), ack_body);
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (!establish_locked(conn_index,
                              static_cast<DeviceId>(hello.device_id))) {
          drop_conn_locked(conn_index);
          return;
        }
        conn.tx.push_back(std::move(frame));
        conn.tx_bytes += conn.tx.back().size();
        bytes_sent_.fetch_add(conn.tx.back().size(),
                              std::memory_order_relaxed);
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
      }
      cv_.notify_all();
      return;
    }
    case FrameType::kHelloAck: {
      rt::HelloBody hello;
      std::lock_guard<std::mutex> lock(mu_);
      if (!rt::decode_hello_body(body, hello) ||
          hello.epoch != options_.epoch || !conn.peer_known ||
          static_cast<DeviceId>(hello.device_id) != conn.peer ||
          !establish_locked(conn_index, conn.peer)) {
        drop_conn_locked(conn_index);
        return;
      }
      cv_.notify_all();
      return;
    }
    case FrameType::kData: {
      Message msg;
      std::uint64_t seq = 0;
      if (!rt::decode_data_body(body, pool_, msg, seq)) {
        std::lock_guard<std::mutex> lock(mu_);
        drop_conn_locked(conn_index);
        return;
      }
      msg.src = static_cast<DeviceId>(header.src);
      const bool want_ack = (header.flags & rt::kFrameFlagWantAck) != 0;
      if (self_ < k_) {
        received_[self_].fetch_add(accounted_bytes(msg),
                                   std::memory_order_relaxed);
      }
      Envelope envelope;
      envelope.msg = std::move(msg);
      envelope.from_endpoint = conn.peer;
      envelope.seq = seq;
      envelope.want_ack = want_ack;
      if (!inbox_.push(std::move(envelope))) {
        // Endpoint dead: refuse the message so the sender unblocks.
        if (want_ack) send_ack(conn.peer, FrameType::kNack, seq);
      }
      return;
    }
    case FrameType::kAck:
    case FrameType::kNack: {
      std::uint64_t seq = 0;
      if (!rt::decode_seq_body(body, seq)) return;
      std::shared_ptr<PendingSend> handle;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = pending_.find(seq);
        if (it == pending_.end()) return;
        handle = std::move(it->second.first);
        pending_.erase(it);
      }
      handle->resolve(header.type == FrameType::kAck);
      return;
    }
    case FrameType::kPing: {
      std::uint64_t seq = 0;
      if (!rt::decode_seq_body(body, seq)) return;
      // Answered here, on the IO thread, regardless of what the worker is
      // doing — the socket analogue of the inproc endpoint daemon.
      send_ack(conn.peer, FrameType::kPong, seq);
      return;
    }
    case FrameType::kPong: {
      std::uint64_t seq = 0;
      if (!rt::decode_seq_body(body, seq)) return;
      {
        std::lock_guard<std::mutex> lock(mu_);
        pongs_.insert(seq);
      }
      cv_.notify_all();
      return;
    }
    // Beat/cancel/control handlers are invoked while holding mu_ (they
    // never re-enter the transport): set_*_handler(nullptr) therefore
    // *synchronizes* with dispatch — once the setter returns, no handler
    // call is in flight or can start, so the caller may safely destroy
    // whatever the handler captured.
    case FrameType::kBeat: {
      std::lock_guard<std::mutex> lock(mu_);
      if (!beat_handler_) {
        pending_beats_.push_back(static_cast<DeviceId>(header.src));
        return;
      }
      beat_handler_(static_cast<DeviceId>(header.src));
      return;
    }
    case FrameType::kCancel: {
      rt::ByteReader reader(body);
      const std::int64_t cid = reader.i64();
      if (!reader.ok()) return;
      std::lock_guard<std::mutex> lock(mu_);
      if (!cancel_handler_) {
        pending_cancels_.push_back(cid);
        return;
      }
      cancel_handler_(cid);
      return;
    }
    case FrameType::kControl: {
      std::lock_guard<std::mutex> lock(mu_);
      if (!control_handler_) {
        pending_control_.emplace_back(
            static_cast<DeviceId>(header.src),
            std::vector<std::uint8_t>(body.begin(), body.end()));
        return;
      }
      control_handler_(static_cast<DeviceId>(header.src),
                       std::vector<std::uint8_t>(body.begin(), body.end()));
      return;
    }
  }
}

void SocketTransport::drop_conn_locked(std::size_t conn_index) {
  Conn& conn = *conns_[conn_index];
  if (conn.closed) return;
  conn.closed = true;
  if (conn.fd >= 0) {
    // Wake any poll/read on the fd; the IO thread does the actual close.
    ::shutdown(conn.fd, SHUT_RDWR);
  }
  if (conn.established) {
    disconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn.peer_known && conn_of_[conn.peer] == static_cast<int>(conn_index)) {
    conn_of_[conn.peer] = -1;
  }
  conn.tx.clear();
  conn.tx_bytes = 0;
  // Every rendezvous in flight to this peer is now lost.
  std::vector<std::shared_ptr<PendingSend>> dropped;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (conn.peer_known && it->second.second == conn.peer) {
      dropped.push_back(std::move(it->second.first));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& handle : dropped) handle->resolve(false);
  cv_.notify_all();
  wake_io();
}

// ---------------------------------------------------------------------
// Send paths (worker / coordinator threads)
// ---------------------------------------------------------------------

bool SocketTransport::enqueue_frame(DeviceId endpoint,
                                    std::vector<std::uint8_t> frame,
                                    bool allow_block) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const int index = conn_of_[endpoint];
    if (index < 0 || conns_[index]->closed || !self_alive_ || stopping_) {
      return false;
    }
    Conn& conn = *conns_[index];
    if (conn.tx_bytes < kMaxQueuedBytes) {
      conn.tx_bytes += frame.size();
      bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      conn.tx.push_back(std::move(frame));
      lock.unlock();
      wake_io();
      return true;
    }
    if (!allow_block) return false;
    cv_.wait(lock);  // backpressure: the IO thread notifies as it drains
  }
}

std::shared_ptr<PendingSend> SocketTransport::isend(DeviceId src,
                                                    DeviceId dst,
                                                    Message msg) {
  count_device(src);
  count_device(dst);
  HADFL_CHECK_ARG(src != dst, "send to self");
  const std::size_t bytes = accounted_bytes(msg);
  auto handle = std::make_shared<PendingSend>();
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!self_alive_) {
      throw CommError("send: source device " + std::to_string(src) +
                      " is down");
    }
    seq = next_seq_++;
    pending_.emplace(seq, std::make_pair(handle, dst));
  }
  std::vector<std::uint8_t> frame;
  rt::append_data_frame(frame, static_cast<std::uint32_t>(src), msg, seq,
                        /*want_ack=*/true);
  pool_.release(std::move(msg.payload));
  sent_[src].fetch_add(bytes, std::memory_order_relaxed);
  if (!enqueue_frame(dst, std::move(frame), /*allow_block=*/true)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(seq);
    }
    throw CommError("send: destination device " + std::to_string(dst) +
                    " is down");
  }
  return handle;
}

void SocketTransport::send_nonblocking(DeviceId src, DeviceId dst,
                                       Message msg) {
  count_device(src);
  count_device(dst);
  HADFL_CHECK_ARG(src != dst, "send to self");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!self_alive_) {
      throw CommError("send_nonblocking: source device " +
                      std::to_string(src) + " is down");
    }
  }
  const std::size_t bytes = accounted_bytes(msg);
  // §III-D parity with SimTransport/InprocTransport: the payload leaves the
  // sender (volume counted) whether or not the receiver is up.
  sent_[src].fetch_add(bytes, std::memory_order_relaxed);
  std::vector<std::uint8_t> frame;
  rt::append_data_frame(frame, static_cast<std::uint32_t>(src), msg, 0,
                        /*want_ack=*/false);
  pool_.release(std::move(msg.payload));
  if (!enqueue_frame(dst, std::move(frame), /*allow_block=*/true)) {
    throw CommError("send_nonblocking: destination device " +
                    std::to_string(dst) + " is down");
  }
}

void SocketTransport::send_ack(DeviceId endpoint, FrameType type,
                               std::uint64_t seq) {
  std::vector<std::uint8_t> frame;
  rt::append_seq_frame(frame, type, static_cast<std::uint32_t>(self_), seq);
  enqueue_frame(endpoint, std::move(frame), /*allow_block=*/false);
}

Message SocketTransport::recv_match(DeviceId dst, DeviceId from,
                                    std::int64_t tag, double timeout_s) {
  count_device(dst);
  HADFL_CHECK_ARG(dst == self_, "recv for a remote endpoint");
  std::optional<Envelope> envelope = inbox_.pop_match(
      [from, tag](const Envelope& e) {
        return e.msg.src == from && e.msg.tag == tag;
      },
      timeout_s);
  if (!envelope) {
    bool down;
    {
      std::lock_guard<std::mutex> lock(mu_);
      down = !self_alive_;
    }
    if (down) {
      throw CommError("recv: device " + std::to_string(dst) + " is down");
    }
    throw CommError("recv: device " + std::to_string(dst) +
                    " timed out waiting for device " + std::to_string(from) +
                    " (tag " + std::to_string(tag) + ")");
  }
  if (envelope->want_ack) {
    send_ack(envelope->from_endpoint, FrameType::kAck, envelope->seq);
  }
  return std::move(envelope->msg);
}

std::optional<Message> SocketTransport::recv_any(DeviceId dst,
                                                 double timeout_s) {
  count_device(dst);
  HADFL_CHECK_ARG(dst == self_, "recv for a remote endpoint");
  std::optional<Envelope> envelope = inbox_.pop(timeout_s);
  if (!envelope) return std::nullopt;
  if (envelope->want_ack) {
    send_ack(envelope->from_endpoint, FrameType::kAck, envelope->seq);
  }
  return std::move(envelope->msg);
}

bool SocketTransport::handshake(DeviceId src, DeviceId dst,
                                double timeout_s) {
  count_device(dst);
  HADFL_CHECK_ARG(timeout_s >= 0.0, "handshake timeout must be non-negative");
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
  }
  std::vector<std::uint8_t> frame;
  rt::append_seq_frame(frame, FrameType::kPing,
                       static_cast<std::uint32_t>(src), seq);
  if (!enqueue_frame(dst, std::move(frame), /*allow_block=*/false)) {
    return false;  // no connection — the OS-level equivalent of no answer
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_until(lock, deadline, [this, seq, dst] {
    return pongs_.count(seq) != 0 || conn_of_[dst] < 0;
  });
  return pongs_.erase(seq) != 0;
}

void SocketTransport::kill(DeviceId id) {
  count_device(id);
  if (id == self_) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      self_alive_ = false;
      for (std::size_t i = 0; i < conns_.size(); ++i) drop_conn_locked(i);
    }
    inbox_.purge([](const Envelope&) { return true; },
                 [this](Envelope& e) {
                   // Remote senders unblock via the connection teardown;
                   // the payload capacity still recycles locally.
                   pool_.release(std::move(e.msg.payload));
                 });
    inbox_.close();
    wake_io();
    return;
  }
  // Fencing a remote endpoint: drop this process's link to it.
  std::lock_guard<std::mutex> lock(mu_);
  const int index = conn_of_[id];
  if (index >= 0) drop_conn_locked(static_cast<std::size_t>(index));
}

bool SocketTransport::alive(DeviceId id) const {
  count_device(id);
  std::lock_guard<std::mutex> lock(mu_);
  if (id == self_) return self_alive_;
  const int index = conn_of_[id];
  return index >= 0 && conns_[index]->established && !conns_[index]->closed;
}

std::size_t SocketTransport::purge_stale(DeviceId dst,
                                         std::int64_t min_collective_id) {
  count_device(dst);
  HADFL_CHECK_ARG(dst == self_, "purge for a remote endpoint");
  // Collect the nacks first: the mailbox lock is held inside purge, and
  // enqueue_frame takes the transport lock — never nest the two.
  std::vector<std::pair<DeviceId, std::uint64_t>> nacks;
  const std::size_t removed = inbox_.purge(
      [min_collective_id](const Envelope& e) {
        const auto kind = static_cast<rt::MsgKind>(e.msg.tag >> 56);
        if (kind != rt::MsgKind::kData && kind != rt::MsgKind::kModelPush) {
          return false;
        }
        return rt::Transport::tag_collective_id(e.msg.tag) <
               min_collective_id;
      },
      [this, &nacks](Envelope& e) {
        if (e.want_ack) nacks.emplace_back(e.from_endpoint, e.seq);
        pool_.release(std::move(e.msg.payload));
      });
  for (const auto& [endpoint, seq] : nacks) {
    send_ack(endpoint, FrameType::kNack, seq);
  }
  return removed;
}

void SocketTransport::account(DeviceId src, DeviceId dst, std::size_t bytes) {
  count_device(src);
  count_device(dst);
  sent_[src].fetch_add(bytes, std::memory_order_relaxed);
  received_[dst].fetch_add(bytes, std::memory_order_relaxed);
}

comm::VolumeCounters SocketTransport::volume() const {
  comm::VolumeCounters counters;
  counters.sent.reserve(k_);
  counters.received.reserve(k_);
  for (std::size_t d = 0; d < k_; ++d) {
    counters.sent.push_back(sent_[d].load(std::memory_order_relaxed));
    counters.received.push_back(
        received_[d].load(std::memory_order_relaxed));
  }
  return counters;
}

// ---------------------------------------------------------------------
// Control plane / liveness extras
// ---------------------------------------------------------------------

bool SocketTransport::send_control(DeviceId endpoint,
                                   std::span<const std::uint8_t> body) {
  HADFL_CHECK_ARG(endpoint <= k_, "endpoint id out of range");
  std::vector<std::uint8_t> frame;
  append_frame(frame, FrameType::kControl, 0,
               static_cast<std::uint32_t>(self_), body);
  return enqueue_frame(endpoint, std::move(frame), /*allow_block=*/true);
}

void SocketTransport::set_control_handler(
    std::function<void(DeviceId, std::vector<std::uint8_t>)> fn) {
  // Deliver any backlog while still holding mu_: the IO thread takes mu_
  // before consulting the handler, so frames arriving during the drain
  // queue behind it instead of overtaking the earlier ones. Handlers must
  // not call back into SocketTransport methods that take mu_ (ours don't:
  // they only decode and push into caller-owned mailboxes).
  std::lock_guard<std::mutex> lock(mu_);
  control_handler_ = std::move(fn);
  if (!control_handler_) return;
  for (auto& [src, body] : pending_control_) {
    control_handler_(src, std::move(body));
  }
  pending_control_.clear();
}

void SocketTransport::send_beat() {
  std::vector<std::uint8_t> frame;
  append_frame(frame, FrameType::kBeat, 0, static_cast<std::uint32_t>(self_),
               {});
  enqueue_frame(coordinator_id(), std::move(frame), /*allow_block=*/false);
}

void SocketTransport::set_beat_handler(std::function<void(DeviceId)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  beat_handler_ = std::move(fn);
  if (!beat_handler_) return;
  for (const DeviceId src : pending_beats_) beat_handler_(src);
  pending_beats_.clear();
}

void SocketTransport::send_cancel(DeviceId dst, std::int64_t collective_id) {
  std::vector<std::uint8_t> body;
  rt::ByteWriter writer(body);
  writer.i64(collective_id);
  std::vector<std::uint8_t> frame;
  append_frame(frame, FrameType::kCancel, 0,
               static_cast<std::uint32_t>(self_), body);
  enqueue_frame(dst, std::move(frame), /*allow_block=*/false);
}

void SocketTransport::set_cancel_handler(
    std::function<void(std::int64_t)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  cancel_handler_ = std::move(fn);
  if (!cancel_handler_) return;
  for (const std::int64_t cid : pending_cancels_) cancel_handler_(cid);
  pending_cancels_.clear();
}

bool SocketTransport::coordinator_link_up() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int index = conn_of_[k_];
  return index >= 0 && conns_[index]->established && !conns_[index]->closed;
}

NetCounters SocketTransport::counters() const {
  NetCounters c;
  c.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  c.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  c.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  c.frames_received = frames_received_.load(std::memory_order_relaxed);
  c.connects = connects_.load(std::memory_order_relaxed);
  c.disconnects = disconnects_.load(std::memory_order_relaxed);
  c.dial_retries = dial_retries_.load(std::memory_order_relaxed);
  return c;
}

void SocketTransport::export_metrics(obs::MetricsRegistry& registry) const {
  const NetCounters c = counters();
  registry.counter("net.bytes_sent").add(c.bytes_sent);
  registry.counter("net.bytes_received").add(c.bytes_received);
  registry.counter("net.frames_sent").add(c.frames_sent);
  registry.counter("net.frames_received").add(c.frames_received);
  registry.counter("net.connects").add(c.connects);
  registry.counter("net.disconnects").add(c.disconnects);
  registry.counter("net.dial_retries").add(c.dial_retries);
}

}  // namespace hadfl::net
