// Telemetry-driven adaptive control loop (ROADMAP "Close the control loop").
//
// HADFL's Alg. 1 derives the per-device step budgets E_k once from the
// §III-B warm-up and never revisits them. This controller re-closes the
// loop: every sync round it consumes the same measurements the metrics
// registry records (per-device step durations, sync latency, wire bytes,
// round-over-round delta norms) and emits the next round's plan:
//
//   * E_k      — EWMA over measured per-device step durations replaces the
//                warm-up-only Eq. 6 estimate as speeds drift.
//   * chunks   — hysteresis hill-climb on observed sync latency.
//   * codec    — aggressive top-k while deltas are large, int8 mid-run,
//                dense/exact near convergence; escalates one level when the
//                selected ring crosses a slow uplink. Every codec switch
//                forces one exact raw round so error-feedback residuals and
//                sync references re-align (the PR 8 desync fallback).
//
// The controller is deliberately backend-agnostic: the sim trainer feeds it
// virtual timings, the rt/net coordinator feeds it the same quantities from
// live reports. It never touches model state and depends only on
// comm/obs/common, so core can link it without a cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/delta_codec.hpp"
#include "obs/metrics.hpp"

namespace hadfl::ctrl {

struct AdaptiveConfig {
  bool enabled = false;
  /// EWMA smoothing for per-device step-duration estimates, in (0, 1];
  /// 1.0 = trust only the latest round.
  double step_time_alpha = 0.4;
  /// Rounds to observe before the first plan deviates from the warm-up
  /// strategy (the controller still learns during these rounds).
  std::size_t warmup_rounds = 2;
  bool tune_budgets = true;
  bool tune_chunks = true;
  bool tune_codec = true;
  /// Chunk tuner: a move is kept only if latency improved by this relative
  /// margin; otherwise it reverts and holds for `chunk_hold_rounds`.
  double chunk_hysteresis = 0.15;
  std::size_t chunk_hold_rounds = 3;
  std::size_t min_chunks = 1;
  std::size_t max_chunks = 256;
  /// Codec bands on the EWMA of the relative round-over-round delta norm:
  /// above norm_high → top-k, between → int8, below norm_low → dense.
  double norm_high = 2e-3;
  double norm_low = 1e-4;
  /// Smoothing for the delta-norm signal.
  double norm_alpha = 0.5;
  /// Ring members with bandwidth scale below this flag a slow uplink and
  /// escalate the codec one level (none→int8, int8→topk).
  double slow_link_threshold = 0.5;
};

/// One round's knob settings, produced by AdaptiveController::end_round().
struct RoundPlan {
  std::vector<std::size_t> local_steps;  ///< E_k for the coming round
  std::size_t sync_chunks = 0;           ///< 0 = keep the configured grid
  comm::SyncCodec codec = comm::SyncCodec::kNone;
  double topk_ratio = 0.05;
  /// The codec just switched: run one exact raw round (delta exchange off)
  /// so references and residuals re-align before the new codec engages.
  bool force_raw = false;
};

/// Hysteresis hill-climber for the sync chunk count. Proposes doubling /
/// halving moves, keeps a move only when observed latency improves by more
/// than the hysteresis margin, and backs off for a hold period after a
/// failed move so latency noise below the margin cannot make it flap.
class ChunkTuner {
 public:
  ChunkTuner(std::size_t initial, std::size_t min_chunks,
             std::size_t max_chunks, double hysteresis,
             std::size_t hold_rounds);

  /// Feed the latency observed for the current chunk setting; returns the
  /// chunk count to use next round.
  std::size_t observe(double latency_s);

  std::size_t chunks() const { return chunks_; }
  /// Accepted (kept) moves so far — the no-flap property bounds this under
  /// stationary latency.
  std::size_t accepted_moves() const { return accepted_moves_; }

 private:
  std::size_t clamp(std::size_t c) const;

  std::size_t chunks_;
  std::size_t min_chunks_;
  std::size_t max_chunks_;
  double hysteresis_;
  std::size_t hold_rounds_;
  double baseline_ = -1.0;   ///< smoothed latency at the accepted setting
  std::size_t probe_from_ = 0;  ///< chunks before the in-flight probe
  bool probing_ = false;
  bool probe_up_ = true;     ///< alternate probe direction
  std::size_t hold_left_ = 0;
  std::size_t accepted_moves_ = 0;
};

class AdaptiveController {
 public:
  /// `initial_step_time_s[d]` is the warm-up estimate of device d's
  /// per-step duration (epoch_time / iters_per_epoch); `round_window_s` is
  /// the strategy's round window (hyperperiod / t_sync); the remaining
  /// arguments seed the plan so the first `warmup_rounds` rounds reproduce
  /// the static configuration exactly.
  AdaptiveController(AdaptiveConfig config,
                     std::vector<double> initial_step_time_s,
                     double round_window_s,
                     std::vector<std::size_t> initial_local_steps,
                     std::size_t initial_chunks,
                     comm::SyncCodec initial_codec, double initial_topk_ratio);

  /// Optional: mirror decisions into `ctrl.*` counters for the CSV/JSON
  /// exports. The registry must outlive the controller.
  void bind_metrics(obs::MetricsRegistry* registry);

  // ---- per-round observations (order within a round does not matter) ----

  /// Device d spent `seconds_per_step` per local step this round.
  void observe_step_time(std::size_t device, double seconds_per_step);
  /// One sync completed with this latency and wire volume.
  void observe_sync(double latency_s, std::size_t wire_bytes);
  /// Relative round-over-round aggregate delta norm (‖x_t−x_{t−1}‖/‖x_{t−1}‖).
  void observe_delta_norm(double relative_norm);
  /// Whether the round's selected ring crossed a slow uplink.
  void observe_slow_link(bool any_slow);

  /// Folds this round's observations into the plan for the next round.
  void end_round();

  /// The plan for the coming round. Stable between end_round() calls.
  const RoundPlan& plan() const { return plan_; }

  std::size_t rounds_observed() const { return rounds_; }
  double estimated_step_time(std::size_t device) const {
    return step_time_[device];
  }
  std::size_t total_wire_bytes() const { return wire_bytes_; }

 private:
  comm::SyncCodec pick_codec() const;

  AdaptiveConfig config_;
  std::vector<double> step_time_;  ///< EWMA per-step duration estimates
  double window_;
  std::vector<std::size_t> initial_steps_;
  comm::SyncCodec initial_codec_;
  ChunkTuner chunk_tuner_;
  RoundPlan plan_;

  std::size_t rounds_ = 0;
  double norm_ewma_ = -1.0;  ///< <0 until the first delta-norm observation
  bool slow_link_ = false;
  double round_sync_latency_ = -1.0;
  std::size_t wire_bytes_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* budget_updates_ = nullptr;
  obs::Counter* chunk_moves_ = nullptr;
  obs::Counter* codec_switches_ = nullptr;
  obs::Counter* raw_rounds_ = nullptr;
};

}  // namespace hadfl::ctrl
