#include "ctrl/adaptive_controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hadfl::ctrl {

ChunkTuner::ChunkTuner(std::size_t initial, std::size_t min_chunks,
                       std::size_t max_chunks, double hysteresis,
                       std::size_t hold_rounds)
    : chunks_(initial),
      min_chunks_(min_chunks),
      max_chunks_(max_chunks),
      hysteresis_(hysteresis),
      hold_rounds_(hold_rounds) {
  HADFL_CHECK_ARG(min_chunks >= 1 && max_chunks >= min_chunks,
                  "chunk tuner range must satisfy 1 <= min <= max");
  HADFL_CHECK_ARG(hysteresis > 0.0, "chunk hysteresis must be positive");
  chunks_ = clamp(chunks_);
}

std::size_t ChunkTuner::clamp(std::size_t c) const {
  return std::min(max_chunks_, std::max(min_chunks_, c));
}

std::size_t ChunkTuner::observe(double latency_s) {
  if (probing_) {
    // Keep the probe only on a clear win; latency noise below the
    // hysteresis margin reverts and holds, so the setting cannot flap.
    probing_ = false;
    if (latency_s < baseline_ * (1.0 - hysteresis_)) {
      baseline_ = latency_s;
      ++accepted_moves_;
    } else {
      chunks_ = probe_from_;
      probe_up_ = !probe_up_;
      hold_left_ = hold_rounds_;
    }
    return chunks_;
  }
  if (baseline_ < 0.0) {
    baseline_ = latency_s;
  } else {
    baseline_ = 0.5 * baseline_ + 0.5 * latency_s;
  }
  if (hold_left_ > 0) {
    --hold_left_;
    return chunks_;
  }
  const std::size_t next =
      clamp(probe_up_ ? chunks_ * 2 : std::max<std::size_t>(1, chunks_ / 2));
  if (next == chunks_) {  // pinned at a range edge: turn around
    probe_up_ = !probe_up_;
    return chunks_;
  }
  probe_from_ = chunks_;
  chunks_ = next;
  probing_ = true;
  return chunks_;
}

AdaptiveController::AdaptiveController(
    AdaptiveConfig config, std::vector<double> initial_step_time_s,
    double round_window_s, std::vector<std::size_t> initial_local_steps,
    std::size_t initial_chunks, comm::SyncCodec initial_codec,
    double initial_topk_ratio)
    : config_(config),
      step_time_(std::move(initial_step_time_s)),
      window_(round_window_s),
      initial_steps_(std::move(initial_local_steps)),
      initial_codec_(initial_codec),
      chunk_tuner_(initial_chunks == 0 ? comm::kDefaultSyncChunks
                                       : initial_chunks,
                   config.min_chunks, config.max_chunks,
                   config.chunk_hysteresis, config.chunk_hold_rounds) {
  HADFL_CHECK_ARG(step_time_.size() == initial_steps_.size(),
                  "step-time and budget vectors must align");
  HADFL_CHECK_ARG(!step_time_.empty(), "controller needs >= 1 device");
  HADFL_CHECK_ARG(window_ > 0.0, "round window must be positive");
  HADFL_CHECK_ARG(config_.step_time_alpha > 0.0 &&
                      config_.step_time_alpha <= 1.0,
                  "--adaptive-alpha out of range");
  plan_.local_steps = initial_steps_;
  plan_.sync_chunks = initial_chunks;
  plan_.codec = initial_codec;
  plan_.topk_ratio = initial_topk_ratio;
}

void AdaptiveController::bind_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (metrics_ == nullptr) return;
  budget_updates_ = &metrics_->counter("ctrl.budget_updates");
  chunk_moves_ = &metrics_->counter("ctrl.chunk_moves");
  codec_switches_ = &metrics_->counter("ctrl.codec_switches");
  raw_rounds_ = &metrics_->counter("ctrl.raw_fallback_rounds");
}

void AdaptiveController::observe_step_time(std::size_t device,
                                           double seconds_per_step) {
  if (device >= step_time_.size()) return;
  if (!(seconds_per_step > 0.0) || !std::isfinite(seconds_per_step)) return;
  const double a = config_.step_time_alpha;
  step_time_[device] = (1.0 - a) * step_time_[device] + a * seconds_per_step;
}

void AdaptiveController::observe_sync(double latency_s,
                                      std::size_t wire_bytes) {
  if (latency_s >= 0.0 && std::isfinite(latency_s)) {
    round_sync_latency_ = round_sync_latency_ < 0.0
                              ? latency_s
                              : std::max(round_sync_latency_, latency_s);
  }
  wire_bytes_ += wire_bytes;
}

void AdaptiveController::observe_delta_norm(double relative_norm) {
  if (!(relative_norm >= 0.0) || !std::isfinite(relative_norm)) return;
  const double a = config_.norm_alpha;
  norm_ewma_ = norm_ewma_ < 0.0
                   ? relative_norm
                   : (1.0 - a) * norm_ewma_ + a * relative_norm;
}

void AdaptiveController::observe_slow_link(bool any_slow) {
  slow_link_ = slow_link_ || any_slow;
}

comm::SyncCodec AdaptiveController::pick_codec() const {
  comm::SyncCodec codec = comm::SyncCodec::kNone;
  if (norm_ewma_ >= config_.norm_high) {
    codec = comm::SyncCodec::kTopK;
  } else if (norm_ewma_ >= config_.norm_low) {
    codec = comm::SyncCodec::kInt8;
  }
  if (slow_link_) {  // slow uplink: escalate one compression level
    if (codec == comm::SyncCodec::kNone) {
      codec = comm::SyncCodec::kInt8;
    } else if (codec == comm::SyncCodec::kInt8) {
      codec = comm::SyncCodec::kTopK;
    }
  }
  return codec;
}

void AdaptiveController::end_round() {
  ++rounds_;
  const bool active = rounds_ >= config_.warmup_rounds;

  if (config_.tune_budgets && active) {
    bool changed = false;
    for (std::size_t d = 0; d < step_time_.size(); ++d) {
      const std::size_t steps = std::max<std::size_t>(
          1, static_cast<std::size_t>(window_ / step_time_[d] + 1e-9));
      changed = changed || steps != plan_.local_steps[d];
      plan_.local_steps[d] = steps;
    }
    if (changed && budget_updates_ != nullptr) budget_updates_->add();
  }

  if (config_.tune_chunks && active && round_sync_latency_ >= 0.0) {
    const std::size_t before = chunk_tuner_.chunks();
    plan_.sync_chunks = chunk_tuner_.observe(round_sync_latency_);
    if (plan_.sync_chunks != before && chunk_moves_ != nullptr) {
      chunk_moves_->add();
    }
  }

  plan_.force_raw = false;
  if (config_.tune_codec && active && norm_ewma_ >= 0.0) {
    const comm::SyncCodec next = pick_codec();
    if (next != plan_.codec) {
      // One exact raw round bridges the switch: it clears error-feedback
      // residuals and re-aligns every member's sync reference before the
      // new codec starts encoding against them.
      plan_.force_raw = true;
      if (codec_switches_ != nullptr) codec_switches_->add();
      if (raw_rounds_ != nullptr) raw_rounds_->add();
    }
    plan_.codec = next;
  }

  slow_link_ = false;
  round_sync_latency_ = -1.0;
}

}  // namespace hadfl::ctrl
